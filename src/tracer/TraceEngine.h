//===- tracer/TraceEngine.h - The TEST hardware model ----------------------==//
//
// Consumes the annotated sequential execution's event stream and performs
// the two trace analyses of Section 4.2 — load dependency analysis and
// speculative state overflow analysis — exactly as the comparator-bank
// hardware of Section 5 would: a bounded array of banks allocated
// stack-style by `sloop`/`eloop`, shared timestamp storage in the idle
// speculation store buffers, and per-thread critical-arc folding at each
// `eoi`.
//
// The engine consumes events in blocks (interp/EventBlock.h): producers
// append the zero-cost memory events to the engine's EventBlock and drain
// it on overflow and before every control event, so the per-event virtual
// dispatch disappears from the hot path while the observed event order —
// and therefore every statistic — is bit-identical to per-event delivery.
// Per-bank comparator state is kept as structure-of-arrays over the traced
// banks only, making the load-arc comparison and the overflow tally
// branch-light sweeps over contiguous timestamp arrays.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_TRACEENGINE_H
#define JRPM_TRACER_TRACEENGINE_H

#include "interp/EventBlock.h"
#include "interp/TraceSink.h"
#include "metrics/Metrics.h"
#include "metrics/Timeline.h"
#include "sim/Config.h"
#include "tracer/StlStats.h"
#include "tracer/TimestampStores.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace tracer {

/// Static per-loop information the tracer needs: which named locals carry
/// dependencies and therefore receive timestamp slots.
struct LoopTraceInfo {
  std::vector<std::uint16_t> AnnotatedLocals;
};

class TraceEngine : public interp::TraceSink {
public:
  /// Arc length meaning "no arc observed for this thread yet".
  static constexpr std::uint64_t NoArc = ~std::uint64_t(0);

  /// \p Loops is indexed by module-global loop id.
  TraceEngine(const sim::HydraConfig &Cfg, std::vector<LoopTraceInfo> Loops,
              bool ExtendedPcBinning = false);

  /// Dynamically stop tracing a loop once this many threads have been
  /// observed for it, freeing its bank for deeper loops (Section 5.2's
  /// annotation-disabling mechanism). 0 disables the feature.
  ///
  /// With the feature off (the default) every `eoi` charges the fixed
  /// extraCost(Cfg.EoiCost), so the engine opts in to deferred `eoi`
  /// batching; with it on, a disabled loop's `eoi` charges 0 and the
  /// charge becomes state-dependent, so `eoi` reverts to the synchronous
  /// drain-then-dispatch path.
  void setDisableLoopAfterThreads(std::uint64_t Threshold) {
    DisableAfterThreads = Threshold;
    Block.setDeferredEoiCost(
        Threshold == 0 ? static_cast<std::int32_t>(extraCost(Cfg.EoiCost))
                       : -1);
  }

  /// Resizes the event block (the batching window between forced drains).
  /// Any batch size produces bit-identical results; this knob exists for
  /// conformance tests and throughput tuning. Legal only between drains.
  void setBatchCapacity(std::uint32_t Events) { Block.setCapacity(Events); }

  // --- TraceSink interface -------------------------------------------------
  // The per-event virtual methods remain fully supported (tests and
  // non-batching producers use them); each drains pending block events
  // first so mixed use keeps stream order.
  std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                           std::int32_t Pc) override;
  std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                            std::int32_t Pc) override;
  std::uint32_t onLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                            std::uint64_t Cycle, std::int32_t Pc) override;
  std::uint32_t onLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                             std::uint64_t Cycle, std::int32_t Pc) override;
  std::uint32_t onLoopStart(std::uint32_t LoopId, std::uint64_t Activation,
                            std::uint64_t Cycle) override;
  std::uint32_t onLoopIter(std::uint32_t LoopId, std::uint64_t Cycle) override;
  std::uint32_t onLoopEnd(std::uint32_t LoopId, std::uint64_t Cycle) override;
  void onReturn(std::uint64_t Activation) override;
  std::uint32_t onReadStats(std::uint32_t LoopId,
                            std::uint64_t Cycle) override;

  interp::EventBlock *eventBlock() override { return &Block; }
  void drainBlock() override;

  // --- Results -------------------------------------------------------------
  const StlStats &stats(std::uint32_t LoopId) const {
    flushPcBins();
    return Stats[LoopId];
  }
  std::uint32_t numLoops() const {
    return static_cast<std::uint32_t>(Stats.size());
  }

  /// Dynamic nesting: majority-vote parent loop id per loop (-1 for
  /// top-level). Cycle-free by construction (votes creating a cycle are
  /// discarded).
  std::vector<int> dynamicParents() const;

  /// Peak number of simultaneously traced STLs (hardware needs this many
  /// comparator banks).
  std::uint32_t peakBanksInUse() const { return PeakBanks; }

  /// Peak number of local-variable timestamp slots in use.
  std::uint32_t peakLocalSlots() const { return PeakSlots; }

  /// Maximum dynamic loop-nest depth observed (Table 6 column d), counting
  /// loops that could not get a bank.
  std::uint32_t peakDynamicNest() const { return PeakNest; }

  /// Attaches the span recorder: traced bank activations become nested
  /// spans on \p T (the comparator-bank array is a stack, so spans nest by
  /// construction).
  void setObservability(metrics::Timeline *Timeline, metrics::TrackId T) {
    TL = Timeline;
    Track = T;
  }

  /// Exports accumulated totals as "tracer.*" metrics. Every value is a
  /// pure function of the consumed event stream, so a live run and a
  /// replayed capture of the same run export identical bytes.
  void exportMetrics(metrics::Registry &R) const;

private:
  /// One entry of the sloop/eloop stack. Hot comparator state for traced
  /// entries lives in the Traced SoA arrays (indexed by TracedIdx); the
  /// frame keeps only identity and slot ownership. Entries with
  /// Traced == false are placeholders for loops that could not get a bank
  /// (array exhausted, no local slots, or tracing dynamically disabled)
  /// and only keep the stack balanced.
  struct BankFrame {
    std::uint32_t LoopId = 0;
    std::uint64_t Activation = 0;
    bool Traced = false;
    int TracedIdx = -1;
    /// This bank's slice of RegStack/LocalTs: slots
    /// [SlotBase, SlotBase + SlotCount) hold the timestamps of the
    /// registers RegStack[SlotBase .. SlotBase + SlotCount). -1 when the
    /// bank owns no reservation. No per-frame heap state — pushing a frame
    /// is a plain store.
    int SlotBase = -1;
    std::uint32_t SlotCount = 0;
  };

  /// Structure-of-arrays comparator state of the traced banks, a stack
  /// parallel to the traced subsequence of Active. The per-event analyses
  /// sweep these contiguous arrays directly (Figure 7's parallel
  /// comparator banks).
  struct TracedBanks {
    std::vector<std::uint64_t> EntryTime;
    std::vector<std::uint64_t> CurStart;
    std::vector<std::uint64_t> PrevStart;
    std::vector<std::uint64_t> MinArcPrev;
    std::vector<std::uint64_t> MinArcEarlier;
    std::vector<std::int32_t> MinArcPrevPc;
    std::vector<std::int32_t> MinArcEarlierPc;
    std::vector<std::uint64_t> NewLoadLines;
    std::vector<std::uint64_t> NewStoreLines;
    /// Live bank count. The arrays are sized once to the comparator-bank
    /// capacity (init), so push/pop on the sloop/eloop path are plain
    /// stores and a counter bump — no allocator, no capacity checks.
    std::size_t Size = 0;

    void init(std::size_t Capacity);
    std::size_t size() const { return Size; }
    void push(std::uint64_t Cycle);
    void pop() { --Size; }
    /// Resets the per-thread accumulators of bank \p Idx.
    void resetThread(std::size_t Idx);
  };

  /// True once the runtime has dynamically disabled this loop's
  /// annotations (they cost nothing from then on — the paper overwrites
  /// them with nops).
  bool isDisabled(std::uint32_t LoopId) const {
    return DisableAfterThreads &&
           Stats[LoopId].Threads >= DisableAfterThreads;
  }
  /// Coprocessor interaction cost beyond the annotation instruction's own
  /// cycle.
  std::uint32_t extraCost(std::uint32_t Total) const {
    return Total > 0 ? Total - 1 : 0;
  }

  // Specialized drain sweeps; drainBlock picks one per block based on the
  // bank population, which control events cannot change mid-block.
  void drainNoBanks(const interp::BatchedEvent *E, std::uint32_t N);
  void drainOneBank(const interp::BatchedEvent *E, std::uint32_t N);
  void drainManyBanks(const interp::BatchedEvent *E, std::uint32_t N);
  void drainGeneric(const interp::BatchedEvent *E, std::uint32_t N);

  // Batched handlers for the deferred event kinds.
  void handleHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                      std::int32_t Pc);
  void handleHeapStore(std::uint32_t Addr, std::uint64_t Cycle);
  void handleLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                       std::uint64_t Cycle, std::int32_t Pc);
  void handleLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                        std::uint64_t Cycle);
  void handleLoopIter(std::uint32_t LoopId, std::uint64_t Cycle);

  BankFrame *findTraced(std::uint32_t LoopId);
  /// The eoi thread boundary of traced bank \p Idx: records the thread
  /// size, folds its accumulators, and starts the next thread at \p Cycle.
  void iterateBank(std::uint32_t LoopId, std::size_t Idx, std::uint64_t Cycle);
  /// Folds one finished thread's accumulator values into \p LoopId's
  /// StlStats (shared by the SoA path and the register-hoisted drain).
  void foldThread(std::uint32_t LoopId, std::uint64_t MinPrev,
                  std::uint64_t MinEarlier, std::int32_t PrevPc,
                  std::int32_t EarlierPc, std::uint64_t NewLoad,
                  std::uint64_t NewStore);
  /// Flat PC-bin accumulator lookup for \p LoopId (grows on first touch).
  PcBinStats &pcBin(std::uint32_t LoopId, std::int32_t Pc);
  /// Folds the flat per-loop PC-bin accumulators into the observable
  /// ordered StlStats::PcBins maps. Lazy: called on every result read,
  /// cheap no-op when nothing accumulated since the last flush.
  void flushPcBins() const;
  void finalizeThread(std::uint32_t LoopId, std::size_t Idx);
  void closeBank(BankFrame &Bank, std::uint64_t Cycle);
  /// Load dependency check: the inline front gate decides via the cached
  /// window aggregates (one compare each) whether the store can matter to
  /// any comparator at all; only survivors take the outlined bank sweep.
  void checkLoadArc(std::uint64_t StoreTs, std::uint64_t Cycle,
                    std::int32_t Pc) {
    if (StoreTs == NoTimestamp || StoreTs >= MaxCurStart ||
        StoreTs < MinEntryTime)
      return;
    checkLoadArcSweep(StoreTs, Cycle, Pc);
  }
  void checkLoadArcSweep(std::uint64_t StoreTs, std::uint64_t Cycle,
                         std::int32_t Pc);
  /// Refreshes the cached comparison-window aggregates after any traced
  /// bank's EntryTime/CurStart changes (loop start, iteration, close).
  void recomputeWindow() {
    std::uint64_t MaxCur = 0;
    std::uint64_t MinEntry = ~std::uint64_t(0);
    for (std::size_t I = 0; I < Traced.Size; ++I) {
      MaxCur = std::max(MaxCur, Traced.CurStart[I]);
      MinEntry = std::min(MinEntry, Traced.EntryTime[I]);
    }
    MaxCurStart = MaxCur;
    MinEntryTime = MinEntry;
  }

  /// Held by value (reentrancy audit): sweep jobs construct engines from
  /// per-job configs on their own stacks, and a reference member would
  /// dangle the moment a job outlives the temporary it was built from.
  sim::HydraConfig Cfg;
  std::vector<LoopTraceInfo> Loops;
  bool ExtendedPcBinning;
  std::uint64_t DisableAfterThreads = 0;

  HeapStoreTimestamps HeapTs;
  CacheLineTimestampTable LoadLineTs;
  CacheLineTimestampTable StoreLineTs;
  LocalVarTimestampFile LocalTs;
  /// O(1) resolution of (activation, register) to its LocalTs slot —
  /// mirrors the live reservations in RegStack exactly (insert on
  /// reservation, erase on release), so local-variable events skip the
  /// bank-stack walk entirely.
  LocalSlotIndex SlotIndex;

  interp::EventBlock Block;

  std::vector<BankFrame> Active; // stack, bottom = outermost
  TracedBanks Traced;            // SoA state of the traced subsequence
  /// Register number per reserved local slot, exactly parallel to the
  /// LocalTs slot file (RegStack.size() == LocalTs.used() always): slot S
  /// times the variable held in register RegStack[S]. Reservations are
  /// stack-style, so a bank's registers are the contiguous slice named by
  /// its SlotBase/SlotCount and release is a truncation.
  std::vector<std::uint16_t> RegStack;
  /// onLoopStart scratch for the not-yet-covered annotated locals; a
  /// member so the hot path reuses its capacity instead of allocating.
  std::vector<std::uint16_t> ScratchLocals;
  /// Cached aggregates over the traced banks' comparison windows. A store
  /// timestamp at or past every bank's current thread start (the
  /// overwhelmingly common same-thread case) or before every bank's entry
  /// cannot affect any comparator, so the per-event sweeps are skipped
  /// with a single compare — the hardware analogue of the bank array's
  /// shared window register.
  std::uint64_t MaxCurStart = 0;
  std::uint64_t MinEntryTime = ~std::uint64_t(0);
  /// Indexed by loop id. Mutable with PcBinAcc/PcBinsDirty: the flat PC-bin
  /// accumulators are folded into the observable ordered maps lazily on
  /// the first result read (stats() is const, as results reads should be).
  mutable std::vector<StlStats> Stats;
  /// Flat per-loop (pc, bin) accumulators for the extended PC binning. A
  /// thread contributes at most two critical arcs and a loop's arcs
  /// concentrate on a handful of PCs, so an unsorted vector scan beats the
  /// ordered map on the thread-boundary path by an order of magnitude.
  mutable std::vector<std::vector<std::pair<std::int32_t, PcBinStats>>>
      PcBinAcc;
  mutable bool PcBinsDirty = false;
  /// Flat parent-vote matrix: row = loop id, column = parent loop id + 1
  /// (column 0 counts top-level entries). Rows are allocated on the first
  /// vote so nests touch only the loops they actually contain.
  std::vector<std::vector<std::uint64_t>> ParentVotes;
  std::uint32_t PeakBanks = 0;
  std::uint32_t PeakSlots = 0;
  std::uint32_t PeakNest = 0;
  std::uint64_t LastEventTime = 0;
  std::uint64_t SlotReleaseErrors = 0;

  /// Event-stream counters: one plain increment per event, folded into a
  /// registry only by exportMetrics().
  struct EventCounts {
    std::uint64_t HeapLoads = 0;
    std::uint64_t HeapStores = 0;
    std::uint64_t LocalLoads = 0;
    std::uint64_t LocalStores = 0;
    std::uint64_t LoopStarts = 0;
    std::uint64_t LoopIters = 0;
    std::uint64_t LoopEnds = 0;
    std::uint64_t Returns = 0;
    std::uint64_t ReadStats = 0;
  };
  EventCounts Events;
  metrics::Histogram ThreadSizeCycles;
  metrics::Timeline *TL = nullptr;
  metrics::TrackId Track = 0;
};

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_TRACEENGINE_H
