//===- jrpm/LintReport.cpp ------------------------------------------------==//

#include "jrpm/LintReport.h"

#include "ir/AnnotationVerifier.h"
#include "ir/Verifier.h"
#include "jit/Annotator.h"
#include "jit/TlsPlan.h"

#include <vector>

using namespace jrpm;
using namespace jrpm::lint;

namespace {

void addDiagnostics(Json &Diags, std::uint32_t &Violations, const char *Pass,
                    const std::vector<std::string> &Errors) {
  for (const std::string &E : Errors) {
    Json D = Json::object();
    D["pass"] = Pass;
    D["severity"] = "error";
    D["message"] = E;
    Diags.push(std::move(D));
    ++Violations;
  }
}

Json oracleJson(const analysis::LoopOracleResult &R) {
  Json O = Json::object();
  O["verdict"] = analysis::oracleVerdictName(R.Verdict);
  O["test"] = analysis::depTestKindName(R.Test);
  O["distance"] = R.Distance;
  O["window"] = R.WindowCycles;
  Json Pairs = Json::object();
  Pairs["total"] = R.TotalPairs;
  Pairs["independent"] = R.IndependentPairs;
  Pairs["affine"] = R.AffinePairs;
  Pairs["may"] = R.MayPairs;
  O["pairs"] = std::move(Pairs);
  return O;
}

} // namespace

WorkloadLint lint::lintWorkload(const std::string &Name, const ir::Module &M,
                                const analysis::AnalysisOptions &Opts) {
  WorkloadLint Out;
  Out.Doc["workload"] = Name;
  Json Diags = Json::array();

  addDiagnostics(Diags, Out.Violations, "module-verifier", ir::verifyModule(M));

  analysis::ModuleAnalysis MA(M, Opts);
  std::vector<ir::LoopAnnotationInfo> Infos;
  Infos.reserve(MA.candidates().size());
  for (const analysis::CandidateStl &C : MA.candidates())
    Infos.push_back({C.AnnotatedLocals});

  for (jit::AnnotationLevel Level :
       {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized}) {
    const char *Pass = Level == jit::AnnotationLevel::Base
                           ? "annotation-verifier-base"
                           : "annotation-verifier-optimized";
    jit::AnnotatedModule AM = jit::annotateModule(M, MA, Level);
    addDiagnostics(Diags, Out.Violations, Pass,
                   ir::verifyAnnotations(AM.Module, Infos));
    addDiagnostics(Diags, Out.Violations, "module-verifier-annotated",
                   ir::verifyModule(AM.Module));
  }

  for (const analysis::CandidateStl &C : MA.candidates()) {
    if (C.Rejected)
      continue;
    jit::TlsLoopPlan Plan = jit::buildTlsPlan(MA, C);
    addDiagnostics(Diags, Out.Violations, "tls-plan-verifier",
                   jit::verifyTlsPlan(M, Plan));
  }

  Json Loops = Json::array();
  for (const analysis::CandidateStl &C : MA.candidates()) {
    const analysis::LoopMemDep &MD =
        MA.func(C.FuncIndex).MemDep->loopDep(C.LoopIdx);
    Json L = Json::object();
    L["id"] = C.LoopId;
    L["function"] = C.FuncIndex;
    L["status"] = C.Rejected ? "rejected" : "candidate";
    L["reject"] = analysis::rejectKindName(C.Kind);
    L["loads"] = MD.NumLoads;
    L["stores"] = MD.NumStores;
    L["raw"] = MD.NumRaw;
    L["waw"] = MD.NumWaw;
    L["may"] = MD.NumMay;
    L["independent"] = MD.IndependentPairs;
    L["parallel"] = MD.ProvablyParallel;
    if (MD.Serial.Found)
      L["serial_window"] = MD.Serial.WindowCycles;
    if (const analysis::LoopOracleResult *R = MA.oracleResult(C.LoopId))
      L["oracle"] = oracleJson(*R);
    Loops.push(std::move(L));
  }

  Out.Doc["diagnostics"] = std::move(Diags);
  Out.Doc["loops"] = std::move(Loops);
  Out.Doc["violations"] = Out.Violations;
  return Out;
}
