//===- jrpm/LintReport.h - Structured lint report over one module ----------==//
//
// Library backing for the jrpm-lint tool: runs every static verifier over
// a workload module (structural/def-use/type verifier on the lowered IR,
// the annotation verifier at both annotation levels, the TLS plan verifier
// for every surviving candidate) plus the candidate screening and —
// when enabled — the affine speculation oracle, and folds the results
// into one deterministic JSON document.
//
// Objects serialize with sorted keys (support/Json.h) and every field is
// a pure function of the module and options, so the registry-wide report
// is byte-identical across runs and lint thread counts; the golden gate
// (scripts/ci_lint_golden.sh) holds it to that.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_JRPM_LINTREPORT_H
#define JRPM_JRPM_LINTREPORT_H

#include "analysis/Candidates.h"
#include "ir/IR.h"
#include "support/Json.h"

#include <cstdint>
#include <string>

namespace jrpm {
namespace lint {

/// One workload's lint outcome: the structured report plus the violation
/// count the process exit code aggregates.
struct WorkloadLint {
  Json Doc = Json::object();
  std::uint32_t Violations = 0;
};

/// Lints \p M (named \p Name in the report) under \p Opts. The document
/// layout:
///
///   {
///     "workload":    name,
///     "violations":  total count,
///     "diagnostics": [ { "pass", "severity", "message" } ... ],
///     "loops": [
///       { "id", "function", "status", "reject",
///         "loads", "stores", "raw", "waw", "may", "independent",
///         "parallel", "serial_window"?,          // present when found
///         "oracle"? {                            // present when enabled
///           "verdict", "test", "distance", "window",
///           "pairs": { "total", "independent", "affine", "may" } } }
///       ... ]
///   }
WorkloadLint lintWorkload(const std::string &Name, const ir::Module &M,
                          const analysis::AnalysisOptions &Opts);

} // namespace lint
} // namespace jrpm

#endif // JRPM_JRPM_LINTREPORT_H
