//===- jrpm/Pipeline.cpp --------------------------------------------------==//

#include "jrpm/Pipeline.h"

#include "ir/AnnotationVerifier.h"
#include "support/Compiler.h"

using namespace jrpm;
using namespace jrpm::pipeline;

namespace {

void failOnErrors(const char *Stage, const std::vector<std::string> &Errors) {
  if (Errors.empty())
    return;
  for (const std::string &E : Errors)
    std::fprintf(stderr, "%s: %s\n", Stage, E.c_str());
  JRPM_FATAL("pipeline verification failed");
}

} // namespace

Jrpm::Jrpm(ir::Module Program, PipelineConfig Config)
    : M(std::move(Program)), Cfg(std::move(Config)) {
  analysis::AnalysisOptions Opts;
  Opts.StaticPrefilter = Cfg.StaticPrefilter;
  Opts.SerialArcBudget = Cfg.SerialArcBudget;
  MA = std::make_unique<analysis::ModuleAnalysis>(M, Opts);
}

interp::RunResult Jrpm::runPlain(const std::vector<std::uint64_t> &Args) {
  interp::Machine Machine(M, Cfg.Hw);
  return Machine.run(Args);
}

Jrpm::ProfileOutcome
Jrpm::profileAndSelect(const std::vector<std::uint64_t> &Args) {
  if (!Annotated) {
    Annotated = std::make_unique<jit::AnnotatedModule>(
        jit::annotateModule(M, *MA, Cfg.Level));
    // Step-1 lint: the tracer trusts marker nesting and lwl/swl coverage.
    std::vector<ir::LoopAnnotationInfo> Infos;
    Infos.reserve(Annotated->LoopInfos.size());
    for (const tracer::LoopTraceInfo &Info : Annotated->LoopInfos)
      Infos.push_back({Info.AnnotatedLocals});
    failOnErrors("annotation verifier",
                 ir::verifyAnnotations(Annotated->Module, Infos));
  }

  Tracer = std::make_unique<tracer::TraceEngine>(
      Cfg.Hw, Annotated->LoopInfos, Cfg.ExtendedPcBinning);
  if (Cfg.DisableLoopAfterThreads)
    Tracer->setDisableLoopAfterThreads(Cfg.DisableLoopAfterThreads);

  interp::Machine Machine(Annotated->Module, Cfg.Hw);
  Machine.setTraceSink(Tracer.get());
  ProfileOutcome Out;
  Out.Run = Machine.run(Args);
  Out.Selection = tracer::selectStls(*Tracer, Out.Run.Cycles, Cfg.Hw);
  Out.PeakBanksInUse = Tracer->peakBanksInUse();
  Out.PeakLocalSlots = Tracer->peakLocalSlots();
  Out.PeakDynamicNest = Tracer->peakDynamicNest();
  return Out;
}

Jrpm::TlsOutcome
Jrpm::runSpeculative(const tracer::SelectionResult &Selection,
                     const std::vector<std::uint64_t> &Args) {
  std::vector<jit::TlsLoopPlan> Plans;
  for (std::uint32_t LoopId : Selection.SelectedLoops) {
    const analysis::CandidateStl &C = MA->candidate(LoopId);
    if (C.Rejected)
      continue;
    Plans.push_back(jit::buildTlsPlan(*MA, C));
    // Step-4 lint: the Hydra engine executes the plan unchecked.
    failOnErrors("tls plan verifier", jit::verifyTlsPlan(M, Plans.back()));
  }
  hydra::TlsEngine Engine(M, Cfg.Hw, std::move(Plans));
  interp::Machine Machine(M, Cfg.Hw);
  Machine.setDispatcher(&Engine);
  TlsOutcome Out;
  Out.Run = Machine.run(Args);
  Out.LoopStats = Engine.loopStats();
  return Out;
}

PipelineResult Jrpm::runAll(const std::vector<std::uint64_t> &Args) {
  PipelineResult R;
  R.PlainRun = runPlain(Args);
  ProfileOutcome P = profileAndSelect(Args);
  R.ProfiledRun = P.Run;
  R.Selection = std::move(P.Selection);
  R.PeakBanksInUse = P.PeakBanksInUse;
  R.PeakLocalSlots = P.PeakLocalSlots;
  R.PeakDynamicNest = P.PeakDynamicNest;
  TlsOutcome T = runSpeculative(R.Selection, Args);
  R.TlsRun = T.Run;
  R.TlsLoopStats = std::move(T.LoopStats);
  return R;
}
