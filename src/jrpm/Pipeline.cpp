//===- jrpm/Pipeline.cpp --------------------------------------------------==//

#include "jrpm/Pipeline.h"

#include "ir/AnnotationVerifier.h"
#include "support/Compiler.h"
#include "trace/Replay.h"
#include "trace/Writer.h"

using namespace jrpm;
using namespace jrpm::pipeline;

namespace {

void failOnErrors(const char *Stage, const std::vector<std::string> &Errors) {
  if (Errors.empty())
    return;
  for (const std::string &E : Errors)
    std::fprintf(stderr, "%s: %s\n", Stage, E.c_str());
  JRPM_FATAL("pipeline verification failed");
}

trace::RunInfo toRunInfo(const interp::RunResult &R) {
  trace::RunInfo I;
  I.Cycles = R.Cycles;
  I.Instructions = R.Instructions;
  I.ReturnValue = R.ReturnValue;
  I.Loads = R.Loads;
  I.Stores = R.Stores;
  I.L1Misses = R.L1Misses;
  return I;
}

interp::RunResult toRunResult(const trace::RunInfo &I) {
  interp::RunResult R;
  R.Cycles = I.Cycles;
  R.Instructions = I.Instructions;
  R.ReturnValue = I.ReturnValue;
  R.Loads = I.Loads;
  R.Stores = I.Stores;
  R.L1Misses = I.L1Misses;
  return R;
}

} // namespace

Jrpm::Jrpm(ir::Module Program, PipelineConfig Config)
    : M(std::move(Program)), Cfg(std::move(Config)) {
  analysis::AnalysisOptions Opts;
  Opts.StaticPrefilter = Cfg.StaticPrefilter;
  Opts.SerialArcBudget = Cfg.SerialArcBudget;
  Opts.AffineOracle = Cfg.AffineOracle;
  MA = std::make_unique<analysis::ModuleAnalysis>(M, Opts);
  if (Cfg.Timeline) {
    // Fixed registration order => stable pid/tid assignment across runs.
    metrics::Timeline &TL = *Cfg.Timeline;
    PlainTrack = TL.track("jrpm", 0, "plain");
    ProfileTrack = TL.track("jrpm", 1, "profile");
    TlsTrack = TL.track("jrpm", 2, "tls");
    TracerTrack = TL.track("tracer", 0, "banks");
    for (std::uint32_t C = 0; C < Cfg.Hw.NumCores; ++C)
      CoreTracks.push_back(
          TL.track("hydra", C, "cpu" + std::to_string(C)));
    EngineTrack = TL.track("hydra", Cfg.Hw.NumCores, "engine");
  }
}

interp::RunResult Jrpm::runPlain(const std::vector<std::uint64_t> &Args) {
  interp::Machine Machine(M, Cfg.Hw);
  Machine.setObservability(Cfg.Metrics, "plain", Cfg.Timeline, PlainTrack);
  return Machine.run(Args);
}

Jrpm::ProfileOutcome
Jrpm::profileAndSelect(const std::vector<std::uint64_t> &Args) {
  if (!Cfg.ReplayTracePath.empty()) {
    Tracer.reset(); // the replay owns its engine; lastTracer() is null
    return pipeline::selectFromTrace(Cfg.ReplayTracePath, Cfg);
  }
  if (!Annotated) {
    Annotated = std::make_unique<jit::AnnotatedModule>(
        jit::annotateModule(M, *MA, Cfg.Level));
    // Step-1 lint: the tracer trusts marker nesting and lwl/swl coverage.
    std::vector<ir::LoopAnnotationInfo> Infos;
    Infos.reserve(Annotated->LoopInfos.size());
    for (const tracer::LoopTraceInfo &Info : Annotated->LoopInfos)
      Infos.push_back({Info.AnnotatedLocals});
    failOnErrors("annotation verifier",
                 ir::verifyAnnotations(Annotated->Module, Infos));
  }

  Tracer = std::make_unique<tracer::TraceEngine>(
      Cfg.Hw, Annotated->LoopInfos, Cfg.ExtendedPcBinning);
  if (Cfg.DisableLoopAfterThreads)
    Tracer->setDisableLoopAfterThreads(Cfg.DisableLoopAfterThreads);
  if (Cfg.TraceBatchEvents)
    Tracer->setBatchCapacity(Cfg.TraceBatchEvents);

  // Optional capture: tee the event stream to disk while profiling.
  std::unique_ptr<trace::Writer> Recorder;
  std::unique_ptr<trace::RecordingSink> Tee;
  interp::TraceSink *Sink = Tracer.get();
  if (!Cfg.RecordTracePath.empty()) {
    trace::TraceHeader H;
    H.WorkloadName = Cfg.WorkloadName;
    H.AnnotationLevel = Cfg.Level == jit::AnnotationLevel::Base ? 0 : 1;
    H.ExtendedPcBinning = Cfg.ExtendedPcBinning;
    H.DisableLoopAfterThreads = Cfg.DisableLoopAfterThreads;
    H.Hw = Cfg.Hw;
    H.LoopLocals.reserve(Annotated->LoopInfos.size());
    for (const tracer::LoopTraceInfo &Info : Annotated->LoopInfos)
      H.LoopLocals.push_back(Info.AnnotatedLocals);
    Recorder = std::make_unique<trace::Writer>(Cfg.RecordTracePath, H);
    Tee = std::make_unique<trace::RecordingSink>(*Recorder, Tracer.get());
    Sink = Tee.get();
  }

  interp::Machine Machine(Annotated->Module, Cfg.Hw);
  Machine.setTraceSink(Sink);
  Machine.setObservability(Cfg.Metrics, "profiled", Cfg.Timeline,
                           ProfileTrack);
  if (Cfg.Timeline)
    Tracer->setObservability(Cfg.Timeline, TracerTrack);
  ProfileOutcome Out;
  Out.Run = Machine.run(Args);
  if (Recorder)
    Recorder->finish(toRunInfo(Out.Run));
  Out.Selection = tracer::selectStls(*Tracer, Out.Run.Cycles, Cfg.Hw);
  Out.PeakBanksInUse = Tracer->peakBanksInUse();
  Out.PeakLocalSlots = Tracer->peakLocalSlots();
  Out.PeakDynamicNest = Tracer->peakDynamicNest();
  if (Cfg.Metrics)
    Tracer->exportMetrics(*Cfg.Metrics);
  return Out;
}

Jrpm::TlsOutcome
Jrpm::runSpeculative(const tracer::SelectionResult &Selection,
                     const std::vector<std::uint64_t> &Args) {
  std::vector<jit::TlsLoopPlan> Plans;
  for (std::uint32_t LoopId : Selection.SelectedLoops) {
    const analysis::CandidateStl &C = MA->candidate(LoopId);
    if (C.Rejected)
      continue;
    Plans.push_back(jit::buildTlsPlan(*MA, C));
    // Step-4 lint: the Hydra engine executes the plan unchecked.
    failOnErrors("tls plan verifier", jit::verifyTlsPlan(M, Plans.back()));
  }
  hydra::TlsEngine Engine(M, Cfg.Hw, std::move(Plans));
  interp::Machine Machine(M, Cfg.Hw);
  Machine.setDispatcher(&Engine);
  Machine.setObservability(Cfg.Metrics, "tls", Cfg.Timeline, TlsTrack);
  if (Cfg.Timeline)
    Engine.setObservability(Cfg.Timeline, EngineTrack, CoreTracks);
  TlsOutcome Out;
  Out.Run = Machine.run(Args);
  Out.LoopStats = Engine.loopStats();
  if (Cfg.Metrics)
    Engine.exportMetrics(*Cfg.Metrics);
  return Out;
}

Jrpm::ProfileOutcome pipeline::selectFromTrace(const std::string &Path,
                                               const PipelineConfig &Cfg) {
  trace::Reader R(Path);
  trace::ReplayConfig RC;
  RC.Hw = Cfg.Hw;
  RC.ExtendedPcBinning = Cfg.ExtendedPcBinning;
  RC.DisableLoopAfterThreads = Cfg.DisableLoopAfterThreads;
  RC.Metrics = Cfg.Metrics;
  trace::ReplayOutcome Replayed = trace::selectFromTrace(R, RC);

  Jrpm::ProfileOutcome Out;
  Out.Run = toRunResult(Replayed.Run);
  Out.Selection = std::move(Replayed.Selection);
  Out.PeakBanksInUse = Replayed.PeakBanksInUse;
  Out.PeakLocalSlots = Replayed.PeakLocalSlots;
  Out.PeakDynamicNest = Replayed.PeakDynamicNest;
  return Out;
}

PipelineResult Jrpm::runAll(const std::vector<std::uint64_t> &Args) {
  PipelineResult R;
  R.PlainRun = runPlain(Args);
  ProfileOutcome P = profileAndSelect(Args);
  R.ProfiledRun = P.Run;
  R.Selection = std::move(P.Selection);
  R.PeakBanksInUse = P.PeakBanksInUse;
  R.PeakLocalSlots = P.PeakLocalSlots;
  R.PeakDynamicNest = P.PeakDynamicNest;
  TlsOutcome T = runSpeculative(R.Selection, Args);
  R.TlsRun = T.Run;
  R.TlsLoopStats = std::move(T.LoopStats);
  return R;
}
