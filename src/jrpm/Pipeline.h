//===- jrpm/Pipeline.h - The Java Runtime Parallelizing Machine ------------==//
//
// Orchestrates Figure 1's five steps: (1) identify possible STLs by CFG
// analysis and compile with annotation instructions, (2) run the annotated
// program sequentially collecting TEST statistics, (3) post-process the
// statistics and choose the STLs with the best speedups (Equations 1 and
// 2), (4) recompile the selected STLs for speculation, (5) run the native
// TLS code on the Hydra engine.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_JRPM_PIPELINE_H
#define JRPM_JRPM_PIPELINE_H

#include "analysis/Candidates.h"
#include "hydra/TlsEngine.h"
#include "interp/Machine.h"
#include "jit/Annotator.h"
#include "sim/Config.h"
#include "tracer/Selector.h"

#include <map>
#include <memory>

namespace jrpm {
namespace pipeline {

struct PipelineConfig {
  sim::HydraConfig Hw;
  jit::AnnotationLevel Level = jit::AnnotationLevel::Optimized;
  bool ExtendedPcBinning = false;
  /// Forwarded to TraceEngine::setDisableLoopAfterThreads.
  std::uint64_t DisableLoopAfterThreads = 0;
  /// Enables the static dependence pre-filter (analysis::AnalysisOptions):
  /// provably-serial loops are rejected before annotation, so they never
  /// pay profiling overhead. Off by default — the paper's figures measure
  /// the optimistic policy.
  bool StaticPrefilter = false;
  /// Arc budget for the pre-filter, in cycles (see AnalysisOptions).
  std::uint32_t SerialArcBudget = 10;
  /// Enables the affine speculation oracle (analysis::AnalysisOptions):
  /// affine dependence tests produce per-loop verdicts and provably-serial
  /// loops are rejected before annotation. Strictly widens StaticPrefilter.
  bool AffineOracle = false;
  /// Event-block capacity of the profiling tracer (0 = the built-in
  /// default). Every capacity yields bit-identical results — this is a
  /// conformance/throughput knob, not simulated configuration, so it is
  /// deliberately not part of sim::HydraConfig (which is serialized into
  /// trace headers and canonicalized into serve requests).
  std::uint32_t TraceBatchEvents = 0;

  // --- Trace capture & replay (src/trace) ---------------------------------
  /// When non-empty, profileAndSelect tees the annotated run's event
  /// stream into this .jtrace file while profiling. Recording never
  /// perturbs the run: the tee forwards the tracer's cycle charges
  /// unchanged.
  std::string RecordTracePath;
  /// When non-empty, profileAndSelect skips annotation and interpretation
  /// entirely and re-drives a fresh TraceEngine from this recorded trace
  /// (see pipeline::selectFromTrace). With a config matching the capture,
  /// the selection is bit-identical to the live profiled run.
  std::string ReplayTracePath;
  /// Workload name stamped into a recorded trace's header.
  std::string WorkloadName;

  // --- Observability (src/metrics) ----------------------------------------
  /// When set, each pipeline step exports its counters and histograms here
  /// as it finishes: "interp.<phase>.*" from the machines, "tracer.*" from
  /// the profiling (or replayed) engine, "spec.*" from the Hydra engine.
  metrics::Registry *Metrics = nullptr;
  /// When set, steps record spans here. Jrpm registers its tracks in a
  /// fixed order at construction (one per pipeline phase, one for the
  /// tracer's bank array, one per Hydra core plus the engine), so pid/tid
  /// assignment is stable run to run.
  metrics::Timeline *Timeline = nullptr;
};

struct PipelineResult {
  interp::RunResult PlainRun;    ///< clean sequential baseline
  interp::RunResult ProfiledRun; ///< annotated run feeding TEST
  tracer::SelectionResult Selection;
  interp::RunResult TlsRun; ///< actual speculative execution
  std::map<std::uint32_t, hydra::TlsLoopRunStats> TlsLoopStats;
  std::uint32_t PeakBanksInUse = 0;
  std::uint32_t PeakLocalSlots = 0;
  std::uint32_t PeakDynamicNest = 0;

  double profilingSlowdown() const {
    return PlainRun.Cycles ? static_cast<double>(ProfiledRun.Cycles) /
                                 static_cast<double>(PlainRun.Cycles)
                           : 1.0;
  }
  double actualSpeedup() const {
    return TlsRun.Cycles ? static_cast<double>(PlainRun.Cycles) /
                               static_cast<double>(TlsRun.Cycles)
                         : 1.0;
  }
  double predictedSpeedup() const {
    // Selection predicted against the profiled run's cycle count.
    return Selection.PredictedSpeedup;
  }
};

/// Owns a program and runs the Jrpm steps over it.
class Jrpm {
public:
  Jrpm(ir::Module Program, PipelineConfig Config);

  const ir::Module &program() const { return M; }
  const analysis::ModuleAnalysis &moduleAnalysis() const { return *MA; }
  const PipelineConfig &config() const { return Cfg; }

  /// Step 0 (baseline): clean sequential run, no annotations.
  interp::RunResult runPlain(const std::vector<std::uint64_t> &Args = {});

  /// Steps 1–3: annotate, profile with TEST, select STLs. The returned
  /// engine reference stays valid until the next call.
  struct ProfileOutcome {
    interp::RunResult Run;
    tracer::SelectionResult Selection;
    std::uint32_t PeakBanksInUse = 0;
    std::uint32_t PeakLocalSlots = 0;
    std::uint32_t PeakDynamicNest = 0;
  };
  ProfileOutcome profileAndSelect(const std::vector<std::uint64_t> &Args = {});

  /// Access to the tracer of the most recent profiling run (PC bins etc.).
  /// Null after a replayed profile (Cfg.ReplayTracePath): the replay owns
  /// its engine internally.
  const tracer::TraceEngine *lastTracer() const { return Tracer.get(); }

  /// Steps 4–5: recompile the selected loops and run speculatively.
  struct TlsOutcome {
    interp::RunResult Run;
    std::map<std::uint32_t, hydra::TlsLoopRunStats> LoopStats;
  };
  TlsOutcome runSpeculative(const tracer::SelectionResult &Selection,
                            const std::vector<std::uint64_t> &Args = {});

  /// All five steps.
  PipelineResult runAll(const std::vector<std::uint64_t> &Args = {});

private:
  ir::Module M;
  PipelineConfig Cfg;
  std::unique_ptr<analysis::ModuleAnalysis> MA;
  std::unique_ptr<jit::AnnotatedModule> Annotated;
  std::unique_ptr<tracer::TraceEngine> Tracer;

  // Timeline tracks, registered in the constructor (fixed order).
  metrics::TrackId PlainTrack = 0;
  metrics::TrackId ProfileTrack = 0;
  metrics::TrackId TlsTrack = 0;
  metrics::TrackId TracerTrack = 0;
  metrics::TrackId EngineTrack = 0;
  std::vector<metrics::TrackId> CoreTracks;
};

/// Trace-driven Steps 2–3: rebuilds the tracer from a recorded .jtrace and
/// runs STL selection without the program or the interpreter. Uses the
/// tracer-side knobs of \p Cfg (Hw, ExtendedPcBinning,
/// DisableLoopAfterThreads); when they match the capture configuration the
/// result is bit-identical to the live profiled run. ProfileOutcome.Run is
/// the capture run's recorded result. Throws trace::Error on corruption.
Jrpm::ProfileOutcome selectFromTrace(const std::string &Path,
                                     const PipelineConfig &Cfg);

} // namespace pipeline
} // namespace jrpm

#endif // JRPM_JRPM_PIPELINE_H
