//===- analysis/LoopInfo.cpp ----------------------------------------------==//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jrpm;
using namespace jrpm::analysis;

bool Loop::contains(std::uint32_t Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

LoopInfo::LoopInfo(const ir::Function &F, const DominatorTree &DT) {
  std::uint32_t N = F.numBlocks();
  BlockToLoop.assign(N, -1);
  auto Preds = F.computePredecessors();

  // Collect backedges: u -> h where h dominates u.
  std::map<std::uint32_t, std::vector<std::uint32_t>> HeaderToLatches;
  std::vector<std::uint32_t> Succs;
  for (std::uint32_t B = 0; B < N; ++B) {
    if (!DT.isReachable(B))
      continue;
    Succs.clear();
    F.Blocks[B].appendSuccessors(Succs);
    for (std::uint32_t S : Succs)
      if (DT.dominates(S, B))
        HeaderToLatches[S].push_back(B);
  }

  // Build the natural loop for each header by walking predecessors
  // backwards from the latches without crossing the header.
  for (auto &[Header, Latches] : HeaderToLatches) {
    Loop L;
    L.Header = Header;
    L.Latches = Latches;
    std::set<std::uint32_t> Body = {Header};
    std::vector<std::uint32_t> Work = Latches;
    while (!Work.empty()) {
      std::uint32_t B = Work.back();
      Work.pop_back();
      if (!Body.insert(B).second)
        continue;
      for (std::uint32_t P : Preds[B])
        if (DT.isReachable(P))
          Work.push_back(P);
    }
    L.Blocks.assign(Body.begin(), Body.end());

    // Exit targets: successors outside the body.
    std::set<std::uint32_t> Exits;
    for (std::uint32_t B : L.Blocks) {
      Succs.clear();
      F.Blocks[B].appendSuccessors(Succs);
      for (std::uint32_t S : Succs)
        if (!Body.count(S))
          Exits.insert(S);
    }
    L.ExitTargets.assign(Exits.begin(), Exits.end());
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is the parent of B if A's body strictly contains B's
  // header and A != B. Pick the smallest such container.
  for (std::uint32_t I = 0; I < Loops.size(); ++I) {
    int Best = -1;
    size_t BestSize = 0;
    for (std::uint32_t J = 0; J < Loops.size(); ++J) {
      if (I == J || !Loops[J].contains(Loops[I].Header) ||
          Loops[J].Header == Loops[I].Header)
        continue;
      if (Best < 0 || Loops[J].Blocks.size() < BestSize) {
        Best = static_cast<int>(J);
        BestSize = Loops[J].Blocks.size();
      }
    }
    Loops[I].Parent = Best;
    if (Best >= 0)
      Loops[static_cast<std::uint32_t>(Best)].Children.push_back(I);
  }

  // Depths, top-down.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Loop &L : Loops) {
      std::uint32_t Want =
          L.Parent < 0 ? 1
                       : Loops[static_cast<std::uint32_t>(L.Parent)].Depth + 1;
      if (L.Depth != Want) {
        L.Depth = Want;
        Changed = true;
      }
    }
  }

  // Innermost loop per block: the containing loop with the greatest depth.
  for (std::uint32_t I = 0; I < Loops.size(); ++I)
    for (std::uint32_t B : Loops[I].Blocks) {
      int Cur = BlockToLoop[B];
      if (Cur < 0 ||
          Loops[static_cast<std::uint32_t>(Cur)].Depth < Loops[I].Depth)
        BlockToLoop[B] = static_cast<int>(I);
    }
}

std::uint32_t LoopInfo::maxDepth() const {
  std::uint32_t Max = 0;
  for (const Loop &L : Loops)
    Max = std::max(Max, L.Depth);
  return Max;
}

std::uint32_t LoopInfo::heightOf(std::uint32_t LoopIdx) const {
  const Loop &L = Loops[LoopIdx];
  std::uint32_t Max = 0;
  for (std::uint32_t C : L.Children)
    Max = std::max(Max, heightOf(C));
  return Max + 1;
}
