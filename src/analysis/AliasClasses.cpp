//===- analysis/AliasClasses.cpp ------------------------------------------==//

#include "analysis/AliasClasses.h"

#include "ir/RegUse.h"

#include <unordered_map>

using namespace jrpm;
using namespace jrpm::analysis;

bool AliasSet::disjointFrom(const AliasSet &Other) const {
  if (Unknown || Other.Unknown)
    return false;
  BitVector Tmp = Sites;
  Tmp.subtract(Other.Sites);
  // Disjoint iff removing the other set changes nothing, i.e. no shared bit.
  return Tmp == Sites;
}

AliasClasses::AliasClasses(const ir::Function &F) {
  // Number the Alloc sites.
  std::unordered_map<const ir::Instruction *, std::uint32_t> SiteOf;
  for (const ir::BasicBlock &BB : F.Blocks)
    for (const ir::Instruction &I : BB.Instructions)
      if (I.Op == ir::Opcode::Alloc)
        SiteOf.emplace(&I, NumSites++);

  Sets.resize(F.NumRegs);
  for (AliasSet &S : Sets)
    S.Sites = BitVector(NumSites);

  // Parameters can carry pointers from the caller.
  for (std::uint32_t P = 0; P < F.NumParams && P < F.NumRegs; ++P)
    Sets[P].Unknown = true;

  // Flow-insensitive fixpoint: every definition merges into its register's
  // summary. Mov/AddImm propagate; additive arithmetic unions (pointer plus
  // offset in either operand); anything else that produces a value a later
  // address could be built from is Unknown.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const ir::BasicBlock &BB : F.Blocks) {
      for (const ir::Instruction &I : BB.Instructions) {
        std::uint16_t Dst = ir::definedReg(I);
        if (Dst == ir::NoReg || Dst >= F.NumRegs)
          continue;
        AliasSet &D = Sets[Dst];
        auto MergeReg = [&](std::uint16_t R) {
          if (R == ir::NoReg || R >= F.NumRegs)
            return;
          const AliasSet &S = Sets[R];
          if (S.Unknown && !D.Unknown) {
            D.Unknown = true;
            Changed = true;
          }
          Changed |= D.Sites.unionWith(S.Sites);
        };
        switch (I.Op) {
        case ir::Opcode::Alloc: {
          std::uint32_t Site = SiteOf.at(&I);
          if (!D.Sites.test(Site)) {
            D.Sites.set(Site);
            Changed = true;
          }
          break;
        }
        case ir::Opcode::Mov:
        case ir::Opcode::AddImm:
          MergeReg(I.A);
          break;
        case ir::Opcode::Add:
        case ir::Opcode::Sub:
          MergeReg(I.A);
          MergeReg(I.B);
          break;
        case ir::Opcode::ConstI:
        case ir::Opcode::ConstF:
          // Constants are pure scalars: empty set.
          break;
        case ir::Opcode::CmpEQ:
        case ir::Opcode::CmpNE:
        case ir::Opcode::CmpLT:
        case ir::Opcode::CmpLE:
        case ir::Opcode::CmpGT:
        case ir::Opcode::CmpGE:
        case ir::Opcode::FCmpEQ:
        case ir::Opcode::FCmpLT:
        case ir::Opcode::FCmpLE:
          // Comparison results are 0/1 flags, never addresses.
          break;
        default:
          // Load, Call, Mul, Div, float ops, conversions, ...: the result
          // may encode a pointer we cannot track.
          if (!D.Unknown) {
            D.Unknown = true;
            Changed = true;
          }
          break;
        }
      }
    }
  }
}

AliasSet AliasClasses::addressSet(std::uint16_t A, std::uint16_t B) const {
  AliasSet Out;
  Out.Sites = BitVector(NumSites);
  bool AnyReg = false;
  for (std::uint16_t R : {A, B}) {
    if (R == ir::NoReg || R >= Sets.size())
      continue;
    AnyReg = true;
    Out.Unknown |= Sets[R].Unknown;
    Out.Sites.unionWith(Sets[R].Sites);
  }
  // An address built from no register, or only from registers with no known
  // site, is an absolute heap address: it can alias anything.
  if (!Out.Unknown && (!AnyReg || Out.Sites.count() == 0))
    Out.Unknown = true;
  return Out;
}
