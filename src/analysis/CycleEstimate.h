//===- analysis/CycleEstimate.h - Static per-instruction cycle bounds ------==//
//
// Shared static cycle estimates used by the serial-recurrence detector
// (MemDep.cpp) and the affine speculation oracle (StaticOracle.cpp) when
// bounding a store-to-reload window. The numbers mirror the defaults of
// sim::CostModel and sim::HydraConfig, which the analysis layer cannot
// include; every consumer compares windows against a budget expressed in
// the same default units.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_CYCLEESTIMATE_H
#define JRPM_ANALYSIS_CYCLEESTIMATE_H

#include "ir/IR.h"
#include "ir/RegUse.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace analysis {

/// Static per-opcode cycle estimate (defaults of sim::CostModel).
inline std::uint32_t staticOpCost(ir::Opcode Op) {
  switch (Op) {
  case ir::Opcode::Div:
  case ir::Opcode::Rem:
    return 8;
  case ir::Opcode::FDiv:
    return 10;
  case ir::Opcode::FSqrt:
    return 12;
  case ir::Opcode::Call:
    return 2;
  default:
    return 1;
  }
}

/// Annotation costs mirrored from sim::HydraConfig defaults.
inline constexpr std::uint32_t StaticEoiCost = 1;
inline constexpr std::uint32_t StaticLocalAnnoCost = 1;

/// Flags the registers backing source-level named locals — the only ones
/// eligible for lwl/swl annotations during profiling.
inline std::vector<bool> namedLocalRegs(const ir::Function &F) {
  std::vector<bool> Named(F.NumRegs, false);
  for (const auto &[Name, Reg] : F.NamedLocals)
    if (Reg < F.NumRegs)
      Named[Reg] = true;
  return Named;
}

/// Worst-case profiled cost of one instruction, counting the lwl/swl
/// annotations base-level profiling may attach to its named-local operands.
inline std::uint32_t annotatedCostEstimate(const ir::Function &F,
                                           const std::vector<bool> &Named,
                                           const ir::Instruction &I) {
  std::uint32_t Cost = staticOpCost(I.Op);
  ir::forEachUsedReg(I, [&](std::uint16_t R) {
    if (R < F.NumRegs && Named[R])
      Cost += StaticLocalAnnoCost;
  });
  std::uint16_t D = ir::definedReg(I);
  if (D != ir::NoReg && D < F.NumRegs && Named[D])
    Cost += StaticLocalAnnoCost;
  return Cost;
}

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_CYCLEESTIMATE_H
