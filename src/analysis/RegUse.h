//===- analysis/RegUse.h - Per-instruction register use/def ----------------==//

#ifndef JRPM_ANALYSIS_REGUSE_H
#define JRPM_ANALYSIS_REGUSE_H

#include "ir/Instruction.h"

namespace jrpm {
namespace analysis {

/// Calls \p Fn for every register \p I reads. Annotation opcodes are
/// observers and report no uses.
template <typename FnT> void forEachUsedReg(const ir::Instruction &I, FnT Fn) {
  using ir::NoReg;
  using ir::Opcode;
  switch (I.Op) {
  case Opcode::Store:
    if (I.Dst != NoReg)
      Fn(I.Dst); // the stored value
    if (I.A != NoReg)
      Fn(I.A);
    if (I.B != NoReg)
      Fn(I.B);
    return;
  case Opcode::CondBr:
  case Opcode::Arg:
    Fn(I.A);
    return;
  case Opcode::Ret:
    if (I.A != NoReg)
      Fn(I.A);
    return;
  case Opcode::Br:
  case Opcode::ConstI:
  case Opcode::ConstF:
  case Opcode::Call:
  case Opcode::SLoop:
  case Opcode::Eoi:
  case Opcode::ELoop:
  case Opcode::LwlAnno:
  case Opcode::SwlAnno:
  case Opcode::ReadStats:
  case Opcode::Nop:
    return;
  default:
    if (I.A != NoReg)
      Fn(I.A);
    if (I.B != NoReg)
      Fn(I.B);
    return;
  }
}

/// Returns the register \p I defines, or NoReg.
inline std::uint16_t definedReg(const ir::Instruction &I) {
  if (!ir::definesDst(I.Op))
    return ir::NoReg;
  return I.Dst;
}

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_REGUSE_H
