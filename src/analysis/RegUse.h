//===- analysis/RegUse.h - Per-instruction register use/def ----------------==//
//
// The implementation moved to ir/RegUse.h so the IR verifier can share it;
// this header keeps the analysis-namespace spelling every pass uses.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_REGUSE_H
#define JRPM_ANALYSIS_REGUSE_H

#include "ir/RegUse.h"

namespace jrpm {
namespace analysis {

using ir::definedReg;
using ir::forEachUsedReg;

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_REGUSE_H
