//===- analysis/StaticOracle.cpp ------------------------------------------==//

#include "analysis/StaticOracle.h"

#include "analysis/CycleEstimate.h"
#include "analysis/ScalarEvolution.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace jrpm;
using namespace jrpm::analysis;

const char *analysis::oracleVerdictName(OracleVerdict V) {
  switch (V) {
  case OracleVerdict::Unknown:
    return "unknown";
  case OracleVerdict::ProvablySerial:
    return "provably-serial";
  case OracleVerdict::ProvablyParallel:
    return "provably-parallel";
  }
  return "unknown";
}

namespace {

/// One heap access with its affine and alias summaries.
struct Access {
  std::uint32_t Block = 0;
  std::uint32_t Index = 0;
  bool IsStore = false;
  AffineExpr Addr;
  AliasSet Set;
};

/// True when X and Y provably never address the same heap word in any
/// iteration pair — including the same iteration, which is what makes
/// this strong enough to exclude an interfering store outright.
bool neverSameCell(const AffineExpr &X, const AffineExpr &Y) {
  if (!X.sameBase(Y))
    return false;
  if (X.IterCoeff != Y.IterCoeff)
    return false; // unequal strides can collide at some iteration pair
  std::int64_t Gap = 0;
  if (__builtin_sub_overflow(X.Const, Y.Const, &Gap) || Gap == INT64_MIN)
    return false;
  if (X.IterCoeff == 0)
    return Gap != 0;
  return Gap % X.IterCoeff != 0;
}

/// Longest intra-iteration path costs over the loop body with backedges
/// removed. Innermost loops give a DAG; anything cyclic reports failure
/// and the serial verdict is withheld.
class WindowModel {
public:
  WindowModel(const ir::Function &Fn, const Loop &Lp)
      : F(Fn), L(Lp), Named(namedLocalRegs(Fn)) {
    std::uint32_t N = static_cast<std::uint32_t>(L.Blocks.size());
    for (std::uint32_t I = 0; I < N; ++I)
      LocalId[L.Blocks[I]] = I;

    std::vector<std::vector<std::uint32_t>> Succ(N);
    std::vector<std::uint32_t> InDeg(N, 0);
    Cost.assign(N, 0);
    IsLatch.assign(N, false);
    SplitCost.assign(N, 0);
    std::vector<std::uint32_t> Targets;
    for (std::uint32_t I = 0; I < N; ++I) {
      const ir::BasicBlock &BB = F.Blocks[L.Blocks[I]];
      for (const ir::Instruction &Ins : BB.Instructions)
        Cost[I] += annotatedCostEstimate(F, Named, Ins);
      if (!BB.Instructions.empty() &&
          BB.Instructions.back().Op == ir::Opcode::CondBr)
        SplitCost[I] = staticOpCost(ir::Opcode::Br);
      Targets.clear();
      BB.appendSuccessors(Targets);
      for (std::uint32_t T : Targets) {
        if (!L.contains(T))
          continue;
        if (T == L.Header) {
          IsLatch[I] = true;
          continue;
        }
        Succ[I].push_back(LocalId.at(T));
        ++InDeg[LocalId.at(T)];
      }
    }

    // Kahn's topological order; a leftover block means a nested cycle.
    std::vector<std::uint32_t> Order;
    Order.reserve(N);
    for (std::uint32_t I = 0; I < N; ++I)
      if (InDeg[I] == 0)
        Order.push_back(I);
    for (std::uint32_t Head = 0; Head < Order.size(); ++Head)
      for (std::uint32_t S : Succ[Order[Head]])
        if (--InDeg[S] == 0)
          Order.push_back(S);
    Acyclic = Order.size() == N;
    if (!Acyclic)
      return;

    // Longest path from the header's entry to each block's entry.
    std::uint32_t HeaderId = LocalId.at(L.Header);
    HeadIn.assign(N, -1);
    HeadIn[HeaderId] = 0;
    for (std::uint32_t B : Order) {
      if (HeadIn[B] < 0)
        continue;
      for (std::uint32_t S : Succ[B])
        HeadIn[S] = std::max(HeadIn[S], HeadIn[B] + Cost[B]);
    }

    // Longest path from each block's entry to an iteration end (the eoi
    // after a latch, plus the split-block branch a conditional latch
    // pays on the way back to the header).
    TailIn.assign(N, -1);
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      std::uint32_t B = *It;
      std::int64_t Cont = -1;
      if (IsLatch[B])
        Cont = StaticEoiCost + SplitCost[B];
      for (std::uint32_t S : Succ[B])
        if (TailIn[S] >= 0)
          Cont = std::max(Cont, TailIn[S]);
      if (Cont >= 0)
        TailIn[B] = Cost[B] + Cont;
    }
  }

  bool ok() const { return Acyclic; }

  /// Worst-case cycles from iteration start to the instruction at
  /// (\p Block, \p Index), that instruction included.
  bool headTo(std::uint32_t Block, std::uint32_t Index,
              std::int64_t &Out) const {
    auto It = LocalId.find(Block);
    if (It == LocalId.end() || HeadIn[It->second] < 0)
      return false;
    Out = HeadIn[It->second];
    const auto &Instrs = F.Blocks[Block].Instructions;
    for (std::uint32_t I = 0; I <= Index && I < Instrs.size(); ++I)
      Out += annotatedCostEstimate(F, Named, Instrs[I]);
    return true;
  }

  /// Worst-case cycles from the instruction at (\p Block, \p Index),
  /// that instruction included, to the end of the iteration.
  bool tailFrom(std::uint32_t Block, std::uint32_t Index,
                std::int64_t &Out) const {
    auto It = LocalId.find(Block);
    if (It == LocalId.end())
      return false;
    std::uint32_t B = It->second;
    const ir::BasicBlock &BB = F.Blocks[Block];
    std::int64_t Rest = 0;
    for (std::uint32_t I = Index; I < BB.Instructions.size(); ++I)
      Rest += annotatedCostEstimate(F, Named, BB.Instructions[I]);
    std::int64_t Cont = -1;
    if (IsLatch[B])
      Cont = StaticEoiCost + SplitCost[B];
    std::vector<std::uint32_t> Targets;
    BB.appendSuccessors(Targets);
    for (std::uint32_t T : Targets)
      if (L.contains(T) && T != L.Header && TailIn[LocalId.at(T)] >= 0)
        Cont = std::max(Cont, TailIn[LocalId.at(T)]);
    if (Cont < 0)
      return false;
    Out = Rest + Cont;
    return true;
  }

private:
  const ir::Function &F;
  const Loop &L;
  std::vector<bool> Named;
  std::map<std::uint32_t, std::uint32_t> LocalId;
  std::vector<std::int64_t> Cost;
  std::vector<bool> IsLatch;
  std::vector<std::int64_t> SplitCost;
  std::vector<std::int64_t> HeadIn, TailIn;
  bool Acyclic = false;
};

} // namespace

LoopOracleResult analysis::runStaticOracle(
    const ir::Function &F, const Loop &L, const InductionInfo &Scalars,
    const AliasClasses &AC, const std::vector<FuncMemEffects> &Effects,
    std::uint32_t SerialArcBudget) {
  LoopOracleResult R;
  LoopScev Scev(F, L, Scalars);

  bool HasAlloc = false;
  bool HasCall = false;
  bool CalleesPure = true;
  bool CalleesReadOnly = true;
  std::vector<Access> Accesses;
  for (std::uint32_t B : L.Blocks) {
    const auto &Instrs = F.Blocks[B].Instructions;
    for (std::uint32_t I = 0; I < Instrs.size(); ++I) {
      const ir::Instruction &Ins = Instrs[I];
      if (Ins.Op == ir::Opcode::Alloc) {
        HasAlloc = true;
      } else if (Ins.Op == ir::Opcode::Call) {
        HasCall = true;
        std::uint32_t Callee = static_cast<std::uint32_t>(Ins.Imm);
        if (Callee < Effects.size()) {
          CalleesPure &= Effects[Callee].pure();
          CalleesReadOnly &= Effects[Callee].readOnly();
        } else {
          CalleesPure = CalleesReadOnly = false;
        }
      }
      if (Ins.Op != ir::Opcode::Load && Ins.Op != ir::Opcode::Store)
        continue;
      Access A;
      A.Block = B;
      A.Index = I;
      A.IsStore = Ins.Op == ir::Opcode::Store;
      A.Addr = Scev.addressAt(Ins, B, I);
      A.Set = AC.addressSet(Ins.A, Ins.B);
      Accesses.push_back(std::move(A));
    }
  }

  // Pair census over store-involving pairs, the lattice the verdicts sit
  // on: affine tests first, alias classes as the fallback.
  std::uint32_t NumStores = 0;
  for (const Access &A : Accesses)
    NumStores += A.IsStore;
  bool AllIndependent = true;
  for (std::size_t I = 0; I < Accesses.size(); ++I) {
    for (std::size_t J = I + 1; J < Accesses.size(); ++J) {
      const Access &X = Accesses[I];
      const Access &Y = Accesses[J];
      if (!X.IsStore && !Y.IsStore)
        continue;
      ++R.TotalPairs;
      DepTestResult T = testWithFallback(X.Addr, Y.Addr, X.Set, Y.Set);
      switch (T.Test) {
      case DepTestKind::Ziv:
      case DepTestKind::StrongSiv:
      case DepTestKind::WeakZeroSiv:
      case DepTestKind::Gcd:
        ++R.AffinePairs;
        break;
      case DepTestKind::AliasClass:
      case DepTestKind::MayFallback:
        break;
      }
      switch (T.Outcome) {
      case DepOutcome::Independent:
        ++R.IndependentPairs;
        break;
      case DepOutcome::Carried:
        AllIndependent = false;
        break;
      case DepOutcome::May:
        ++R.MayPairs;
        AllIndependent = false;
        break;
      }
    }
  }

  // Provably-serial: see the header comment for the full proof checklist.
  if (L.Children.empty() && !HasCall && !HasAlloc && !L.Latches.empty()) {
    WindowModel Window(F, L);
    auto DominatesLatches = [&](std::uint32_t Block) {
      for (std::uint32_t Latch : L.Latches)
        if (!Scev.iterDominates(Block, Latch))
          return false;
      return true;
    };
    for (const Access &S : Accesses) {
      if (!S.IsStore || !S.Addr.Valid || !Window.ok())
        continue;
      if (!DominatesLatches(S.Block))
        continue;
      for (const Access &Ld : Accesses) {
        if (Ld.IsStore || !Ld.Addr.Valid)
          continue;
        if (!DominatesLatches(Ld.Block))
          continue;
        if (!Scev.mustFollow(Ld.Block, Ld.Index, S.Block, S.Index))
          continue;
        if (!S.Addr.sameBase(Ld.Addr))
          continue;
        DepTestResult T = testAffinePair(S.Addr, Ld.Addr);
        if (T.Outcome != DepOutcome::Carried || !T.DistanceExact ||
            T.Distance != 1)
          continue;
        // No other store may ever touch the cell: an aliasing store
        // before the load would satisfy it within the iteration and
        // dissolve the cross-iteration arc the rejection relies on.
        bool CellExclusive = true;
        for (const Access &O : Accesses) {
          if (!O.IsStore || (O.Block == S.Block && O.Index == S.Index))
            continue;
          if (O.Set.disjointFrom(Ld.Set))
            continue;
          if (O.Addr.Valid && neverSameCell(O.Addr, Ld.Addr))
            continue;
          CellExclusive = false;
          break;
        }
        if (!CellExclusive)
          continue;
        std::int64_t Tail = 0, Head = 0;
        if (!Window.tailFrom(S.Block, S.Index, Tail) ||
            !Window.headTo(Ld.Block, Ld.Index, Head))
          continue;
        std::int64_t Cycles = Tail + Head;
        if (Cycles > SerialArcBudget)
          continue;
        if (R.Verdict != OracleVerdict::ProvablySerial ||
            Cycles < R.WindowCycles) {
          R.Verdict = OracleVerdict::ProvablySerial;
          R.Test = T.Test;
          R.Distance = 1;
          R.WindowCycles = static_cast<std::uint32_t>(Cycles);
        }
      }
    }
  }

  // Provably-parallel: every pair independent, no carried scalars beyond
  // inductors and reductions, and any calls harmless against this body.
  if (R.Verdict == OracleVerdict::Unknown && AllIndependent && !HasAlloc &&
      Scalars.OtherCarried.empty()) {
    bool CallsOk =
        !HasCall || CalleesPure || (CalleesReadOnly && NumStores == 0);
    if (CallsOk)
      R.Verdict = OracleVerdict::ProvablyParallel;
  }
  return R;
}
