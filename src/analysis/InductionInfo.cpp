//===- analysis/InductionInfo.cpp -----------------------------------------==//

#include "analysis/InductionInfo.h"

#include "analysis/RegUse.h"

#include <algorithm>

using namespace jrpm;
using namespace jrpm::analysis;

namespace {

struct DefSite {
  std::uint32_t Block;
  std::uint32_t Index;
};

} // namespace

InductionInfo analysis::analyzeLoopScalars(const ir::Function &F,
                                           const Loop &L,
                                           const DominatorTree &DT,
                                           const Liveness &LV) {
  InductionInfo Info;

  // Collect defs and use counts per register within the loop body.
  std::map<std::uint16_t, std::vector<DefSite>> Defs;
  std::map<std::uint16_t, std::uint32_t> UseCount;
  for (std::uint32_t B : L.Blocks) {
    const ir::BasicBlock &BB = F.Blocks[B];
    for (std::uint32_t Idx = 0; Idx < BB.Instructions.size(); ++Idx) {
      const ir::Instruction &I = BB.Instructions[Idx];
      forEachUsedReg(I, [&](std::uint16_t R) { ++UseCount[R]; });
      std::uint16_t D = definedReg(I);
      if (D != ir::NoReg)
        Defs[D].push_back({B, Idx});
    }
  }

  const BitVector &HeaderLive = LV.liveIn(L.Header);
  for (std::uint32_t R = 0; R < F.NumRegs; ++R) {
    if (!HeaderLive.test(R))
      continue;
    auto DefIt = Defs.find(static_cast<std::uint16_t>(R));
    if (DefIt == Defs.end()) {
      Info.Invariants.push_back(static_cast<std::uint16_t>(R));
      continue;
    }
    const std::vector<DefSite> &RegDefs = DefIt->second;
    std::uint16_t Reg = static_cast<std::uint16_t>(R);

    // Basic inductor: single def `AddImm r, r, c` whose block executes once
    // per iteration (dominates every latch).
    if (RegDefs.size() == 1) {
      const ir::Instruction &DefI =
          F.Blocks[RegDefs[0].Block].Instructions[RegDefs[0].Index];
      bool DominatesLatches = true;
      for (std::uint32_t Latch : L.Latches)
        DominatesLatches &= DT.dominates(RegDefs[0].Block, Latch);
      if (DefI.Op == ir::Opcode::AddImm && DefI.A == Reg &&
          DominatesLatches) {
        Info.Inductors[Reg] = DefI.Imm;
        continue;
      }
      // Sum reduction: single def `r = r (+|-) x` (or `x + r`) and the only
      // in-loop use of r is that def itself.
      bool IsIntSum =
          (DefI.Op == ir::Opcode::Add || DefI.Op == ir::Opcode::Sub) &&
          (DefI.A == Reg || (DefI.Op == ir::Opcode::Add && DefI.B == Reg));
      bool IsFloatSum =
          (DefI.Op == ir::Opcode::FAdd || DefI.Op == ir::Opcode::FSub) &&
          (DefI.A == Reg || (DefI.Op == ir::Opcode::FAdd && DefI.B == Reg));
      bool IsAddImmSelf = DefI.Op == ir::Opcode::AddImm && DefI.A == Reg;
      if ((IsIntSum || IsFloatSum || IsAddImmSelf) && UseCount[Reg] == 1) {
        // An AddImm on itself that does not dominate the latches is a
        // conditionally-executed counter; treat it as an integer sum
        // reduction (privatizable with a final combine).
        Info.Reductions[Reg] =
            IsFloatSum ? ReductionKind::SumFloat : ReductionKind::SumInt;
        continue;
      }
    }
    Info.OtherCarried.push_back(Reg);
  }
  return Info;
}
