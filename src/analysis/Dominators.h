//===- analysis/Dominators.h - Dominator tree computation ------------------==//

#ifndef JRPM_ANALYSIS_DOMINATORS_H
#define JRPM_ANALYSIS_DOMINATORS_H

#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace analysis {

/// Immediate-dominator tree of a function's CFG, computed with the
/// Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
class DominatorTree {
public:
  explicit DominatorTree(const ir::Function &F);

  /// Returns the immediate dominator of \p Block (the entry block's idom is
  /// itself). Unreachable blocks report themselves.
  std::uint32_t idom(std::uint32_t Block) const { return Idom[Block]; }

  /// Returns true if \p A dominates \p B (reflexive).
  bool dominates(std::uint32_t A, std::uint32_t B) const;

  /// Returns true if \p Block is reachable from the entry.
  bool isReachable(std::uint32_t Block) const { return Reachable[Block]; }

  /// Blocks in reverse postorder (reachable blocks only).
  const std::vector<std::uint32_t> &reversePostOrder() const { return Rpo; }

private:
  std::vector<std::uint32_t> Idom;
  std::vector<std::uint32_t> Depth;
  std::vector<bool> Reachable;
  std::vector<std::uint32_t> Rpo;
};

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_DOMINATORS_H
