//===- analysis/MemDep.cpp ------------------------------------------------==//

#include "analysis/MemDep.h"

#include "analysis/CycleEstimate.h"
#include "ir/RegUse.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

using namespace jrpm;
using namespace jrpm::analysis;

//===----------------------------------------------------------------------===//
// DefUseChains
//===----------------------------------------------------------------------===//

DefUseChains::DefUseChains(const ir::Function &Fn) : F(Fn) {
  SitesOfReg.resize(F.NumRegs);
  for (std::uint32_t B = 0; B < F.numBlocks(); ++B) {
    const auto &Instrs = F.Blocks[B].Instructions;
    for (std::uint32_t I = 0; I < Instrs.size(); ++I) {
      std::uint16_t Reg = ir::definedReg(Instrs[I]);
      if (Reg == ir::NoReg || Reg >= F.NumRegs)
        continue;
      std::uint32_t Id = static_cast<std::uint32_t>(Sites.size());
      Sites.push_back({B, I, Reg});
      SitesOfReg[Reg].push_back(Id);
    }
  }
  std::uint32_t NumSites = static_cast<std::uint32_t>(Sites.size());
  std::uint32_t NumBlocks = F.numBlocks();

  // Per-register site masks for kill sets.
  std::vector<BitVector> RegMask(F.NumRegs, BitVector(NumSites));
  for (std::uint32_t Id = 0; Id < NumSites; ++Id)
    RegMask[Sites[Id].Reg].set(Id);

  // Block-local Gen/Kill, plus which registers the block redefines (those
  // kill the initial parameter/zero value).
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumSites));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumSites));
  std::vector<std::vector<bool>> DefsReg(
      NumBlocks, std::vector<bool>(F.NumRegs, false));
  {
    std::uint32_t Id = 0;
    for (std::uint32_t B = 0; B < NumBlocks; ++B) {
      for (const ir::Instruction &I : F.Blocks[B].Instructions) {
        std::uint16_t Reg = ir::definedReg(I);
        if (Reg == ir::NoReg || Reg >= F.NumRegs)
          continue;
        Gen[B].subtract(RegMask[Reg]);
        Gen[B].set(Id);
        Kill[B].unionWith(RegMask[Reg]);
        DefsReg[B][Reg] = true;
        ++Id;
      }
    }
  }

  In.assign(NumBlocks, BitVector(NumSites));
  ParamIn.assign(std::size_t(NumBlocks) * F.NumRegs, false);
  // The entry block sees every register's initial value.
  for (std::uint32_t R = 0; R < F.NumRegs; ++R)
    ParamIn[R] = true;

  auto Preds = F.computePredecessors();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::uint32_t B = 0; B < NumBlocks; ++B) {
      for (std::uint32_t P : Preds[B]) {
        BitVector Out = In[P];
        Out.subtract(Kill[P]);
        Out.unionWith(Gen[P]);
        Changed |= In[B].unionWith(Out);
        for (std::uint32_t R = 0; R < F.NumRegs; ++R) {
          bool POut = ParamIn[std::size_t(P) * F.NumRegs + R] && !DefsReg[P][R];
          auto Ref = std::size_t(B) * F.NumRegs + R;
          if (POut && !ParamIn[Ref]) {
            ParamIn[Ref] = true;
            Changed = true;
          }
        }
      }
    }
  }
}

BitVector DefUseChains::liveSitesAt(std::uint32_t Block, std::uint32_t Index,
                                    bool &ParamReaches,
                                    std::uint16_t Reg) const {
  BitVector Live = In[Block];
  ParamReaches = ParamIn[std::size_t(Block) * F.NumRegs + Reg];
  // Re-number sites of this block to apply intra-block kills/gens up to the
  // use point.
  std::uint32_t Id = 0;
  for (const DefSite &S : Sites) {
    if (S.Block == Block && S.Index < Index) {
      if (S.Reg == Reg) {
        for (std::uint32_t Other : SitesOfReg[Reg])
          Live.reset(Other);
        ParamReaches = false;
      }
      Live.set(Id);
    }
    ++Id;
  }
  return Live;
}

std::vector<std::uint32_t> DefUseChains::reachingDefs(std::uint32_t Block,
                                                      std::uint32_t Index,
                                                      std::uint16_t Reg) const {
  std::vector<std::uint32_t> Out;
  if (Reg >= F.NumRegs)
    return Out;
  bool ParamReaches = false;
  BitVector Live = liveSitesAt(Block, Index, ParamReaches, Reg);
  for (std::uint32_t Id : SitesOfReg[Reg])
    if (Live.test(Id))
      Out.push_back(Id);
  return Out;
}

bool DefUseChains::mayReadParam(std::uint32_t Block, std::uint32_t Index,
                                std::uint16_t Reg) const {
  if (Reg >= F.NumRegs)
    return false;
  bool ParamReaches = false;
  liveSitesAt(Block, Index, ParamReaches, Reg);
  return ParamReaches;
}

const char *analysis::depKindName(DepKind Kind) {
  switch (Kind) {
  case DepKind::Raw:
    return "raw";
  case DepKind::War:
    return "war";
  case DepKind::Waw:
    return "waw";
  case DepKind::May:
    return "may";
  }
  return "may";
}

//===----------------------------------------------------------------------===//
// MemDepAnalysis
//===----------------------------------------------------------------------===//

namespace {

/// Normalised unordered register pair of an address.
std::pair<std::uint16_t, std::uint16_t> regPair(std::uint16_t A,
                                                std::uint16_t B) {
  return A <= B ? std::make_pair(A, B) : std::make_pair(B, A);
}

enum class PairVerdict { Independent, Carried, May };

} // namespace

MemDepAnalysis::MemDepAnalysis(const ir::Function &F, const DominatorTree &DT,
                               const LoopInfo &LI,
                               const std::vector<InductionInfo> &Scalars)
    : AC(F), DU(F) {
  Deps.resize(LI.loops().size());
  for (std::uint32_t L = 0; L < LI.loops().size(); ++L)
    analyzeLoop(F, DT, LI.loops()[L], Scalars[L], Deps[L]);
}

void MemDepAnalysis::analyzeLoop(const ir::Function &F,
                                 const DominatorTree &DT, const Loop &L,
                                 const InductionInfo &Scalars,
                                 LoopMemDep &Out) {
  auto IsInvariant = [&](std::uint16_t Reg) {
    if (Reg == ir::NoReg)
      return true;
    return std::find(Scalars.Invariants.begin(), Scalars.Invariants.end(),
                     Reg) != Scalars.Invariants.end();
  };

  std::vector<MemAccess> Accesses;
  for (std::uint32_t B : L.Blocks) {
    const auto &Instrs = F.Blocks[B].Instructions;
    for (std::uint32_t I = 0; I < Instrs.size(); ++I) {
      const ir::Instruction &Ins = Instrs[I];
      if (Ins.Op == ir::Opcode::Call)
        Out.HasCall = true;
      else if (Ins.Op == ir::Opcode::Alloc)
        Out.HasAlloc = true;
      if (Ins.Op != ir::Opcode::Load && Ins.Op != ir::Opcode::Store)
        continue;
      MemAccess A;
      A.Block = B;
      A.Index = I;
      A.IsStore = Ins.Op == ir::Opcode::Store;
      A.BaseA = Ins.A;
      A.BaseB = Ins.B;
      A.Offset = Ins.Imm;
      Accesses.push_back(A);
      if (A.IsStore)
        ++Out.NumStores;
      else
        ++Out.NumLoads;
    }
  }

  // Locate the single update site of each basic inductor so same-offset
  // accesses on the same side of it can be proven iteration-local.
  std::map<std::uint16_t, std::pair<std::uint32_t, std::uint32_t>> UpdateAt;
  for (std::uint32_t B : L.Blocks) {
    const auto &Instrs = F.Blocks[B].Instructions;
    for (std::uint32_t I = 0; I < Instrs.size(); ++I) {
      const ir::Instruction &Ins = Instrs[I];
      if (Ins.Op == ir::Opcode::AddImm && Ins.Dst == Ins.A &&
          Scalars.Inductors.count(Ins.Dst))
        UpdateAt[Ins.Dst] = {B, I};
    }
  }

  // Intra-iteration reachability from a point, never crossing the header:
  // tells whether an access can execute after the inductor update within
  // the same iteration.
  auto MayRunAfter = [&](std::pair<std::uint32_t, std::uint32_t> Update,
                         const MemAccess &A) {
    auto [UB, UI] = Update;
    if (A.Block == UB)
      return A.Index > UI;
    std::vector<bool> Seen(F.numBlocks(), false);
    std::deque<std::uint32_t> Work;
    std::vector<std::uint32_t> Succs;
    F.Blocks[UB].appendSuccessors(Succs);
    for (std::uint32_t S : Succs)
      if (L.contains(S) && S != L.Header)
        Work.push_back(S);
    while (!Work.empty()) {
      std::uint32_t B = Work.front();
      Work.pop_front();
      if (Seen[B])
        continue;
      Seen[B] = true;
      if (B == A.Block)
        return true;
      Succs.clear();
      F.Blocks[B].appendSuccessors(Succs);
      for (std::uint32_t S : Succs)
        if (L.contains(S) && S != L.Header && !Seen[S])
          Work.push_back(S);
    }
    return false;
  };

  auto Classify = [&](const MemAccess &X, const MemAccess &Y,
                      std::int64_t &Distance) {
    Distance = 0;
    AliasSet AX = AC.addressSet(X.BaseA, X.BaseB);
    AliasSet AY = AC.addressSet(Y.BaseA, Y.BaseB);
    if (AX.disjointFrom(AY))
      return PairVerdict::Independent;

    if (regPair(X.BaseA, X.BaseB) != regPair(Y.BaseA, Y.BaseB))
      return PairVerdict::May;

    if (IsInvariant(X.BaseA) && IsInvariant(X.BaseB)) {
      if (X.Offset == Y.Offset)
        return PairVerdict::Carried; // the same fixed cell every iteration
      return PairVerdict::Independent;
    }

    // One shared inductor, remaining register invariant: the address walks
    // by the step each iteration, so the offset gap decides everything.
    std::uint16_t Ind = ir::NoReg;
    bool OtherInvariant = true;
    for (std::uint16_t R : {X.BaseA, X.BaseB}) {
      if (R == ir::NoReg)
        continue;
      if (Scalars.Inductors.count(R)) {
        if (Ind != ir::NoReg && Ind != R)
          return PairVerdict::May; // two inductors: out of scope
        Ind = R;
      } else if (!IsInvariant(R)) {
        OtherInvariant = false;
      }
    }
    if (Ind == ir::NoReg || !OtherInvariant)
      return PairVerdict::May;
    std::int64_t Step = Scalars.Inductors.at(Ind);
    if (Step == 0)
      return PairVerdict::May;
    std::int64_t Gap = X.Offset - Y.Offset;
    if (Gap % Step != 0)
      return PairVerdict::Independent; // the address lattices never meet
    if (Gap == 0) {
      // Same cell only within one iteration — provided neither access can
      // land on the far side of the inductor update, where the register
      // already holds the next iteration's value.
      auto It = UpdateAt.find(Ind);
      if (It != UpdateAt.end() && !MayRunAfter(It->second, X) &&
          !MayRunAfter(It->second, Y))
        return PairVerdict::Independent;
      Distance = 1;
      return PairVerdict::Carried;
    }
    Distance = Gap / Step;
    return PairVerdict::Carried;
  };

  for (std::size_t I = 0; I < Accesses.size(); ++I) {
    for (std::size_t J = I + 1; J < Accesses.size(); ++J) {
      const MemAccess &X = Accesses[I];
      const MemAccess &Y = Accesses[J];
      if (!X.IsStore && !Y.IsStore)
        continue;
      std::int64_t Distance = 0;
      switch (Classify(X, Y, Distance)) {
      case PairVerdict::Independent:
        ++Out.IndependentPairs;
        break;
      case PairVerdict::Carried: {
        CarriedDep D;
        D.Distance = Distance < 0 ? -Distance : Distance;
        // Orient store -> load; a fixed-cell store/load pair realises both
        // the flow and anti direction, reported as Raw (see header).
        const MemAccess &S = X.IsStore ? X : Y;
        const MemAccess &O = X.IsStore ? Y : X;
        D.Src = S;
        D.Dst = O;
        if (X.IsStore && Y.IsStore) {
          D.Kind = DepKind::Waw;
          ++Out.NumWaw;
        } else {
          D.Kind = DepKind::Raw;
          ++Out.NumRaw;
          ++Out.NumWar;
        }
        Out.Carried.push_back(D);
        break;
      }
      case PairVerdict::May: {
        CarriedDep D;
        D.Kind = DepKind::May;
        D.Src = X;
        D.Dst = Y;
        Out.Carried.push_back(D);
        ++Out.NumMay;
        break;
      }
      }
    }
  }

  Out.ProvablyParallel = Out.NumRaw == 0 && Out.NumWar == 0 &&
                         Out.NumWaw == 0 && Out.NumMay == 0 && !Out.HasCall &&
                         Scalars.OtherCarried.empty();

  if (L.Children.empty() && !Out.HasCall && !Out.HasAlloc)
    findSerialRecurrence(F, L, Scalars, Out);
  (void)DT;
}

void MemDepAnalysis::findSerialRecurrence(const ir::Function &F, const Loop &L,
                                          const InductionInfo &Scalars,
                                          LoopMemDep &Out) {
  if (L.Latches.empty())
    return;
  auto IsInvariant = [&](std::uint16_t Reg) {
    if (Reg == ir::NoReg)
      return true;
    return std::find(Scalars.Invariants.begin(), Scalars.Invariants.end(),
                     Reg) != Scalars.Invariants.end();
  };
  std::vector<bool> Named = namedLocalRegs(F);
  auto AnnotatedCost = [&](const ir::Instruction &I) {
    return annotatedCostEstimate(F, Named, I);
  };

  auto ExactCell = [&](const ir::Instruction &I, const MemAccess &Cell) {
    return regPair(I.A, I.B) == regPair(Cell.BaseA, Cell.BaseB) &&
           I.Imm == Cell.Offset;
  };
  auto MayAliasCell = [&](const ir::Instruction &I, const MemAccess &Cell,
                          const AliasSet &CellSet) {
    AliasSet S = AC.addressSet(I.A, I.B);
    if (S.disjointFrom(CellSet))
      return false;
    // Same invariant address registers, different offset: a distinct cell.
    if (regPair(I.A, I.B) == regPair(Cell.BaseA, Cell.BaseB) &&
        IsInvariant(I.A) && IsInvariant(I.B) && I.Imm != Cell.Offset)
      return false;
    return true;
  };

  const auto &Header = F.Blocks[L.Header].Instructions;

  // Candidate cells: invariant-addressed stores in the first latch.
  const auto &Latch0 = F.Blocks[L.Latches[0]].Instructions;
  for (std::uint32_t SI = 0; SI < Latch0.size(); ++SI) {
    const ir::Instruction &Seed = Latch0[SI];
    if (Seed.Op != ir::Opcode::Store || !IsInvariant(Seed.A) ||
        !IsInvariant(Seed.B))
      continue;
    MemAccess Cell;
    Cell.BaseA = Seed.A;
    Cell.BaseB = Seed.B;
    Cell.Offset = Seed.Imm;
    AliasSet CellSet = AC.addressSet(Cell.BaseA, Cell.BaseB);

    // The reload: a header load of exactly this cell with no possibly
    // aliasing store before it — an earlier same-thread store would
    // swallow the cross-iteration arc the rejection argument relies on.
    std::int64_t LoadIdx = -1;
    std::uint32_t HeadCost = 0;
    for (std::uint32_t HI = 0; HI < Header.size(); ++HI) {
      const ir::Instruction &I = Header[HI];
      HeadCost += AnnotatedCost(I);
      if (I.Op == ir::Opcode::Store && MayAliasCell(I, Cell, CellSet))
        break;
      if (I.Op == ir::Opcode::Load && ExactCell(I, Cell)) {
        LoadIdx = HI;
        break;
      }
    }
    if (LoadIdx < 0)
      continue;

    // Every latch must end its iteration with a store to the cell; the
    // window tail is the worst case across latches. Later aliasing stores
    // are harmless — they only move the arc's source closer to the load.
    bool AllLatches = true;
    std::uint32_t WorstTail = 0;
    std::uint32_t RepBlock = 0, RepIndex = 0;
    for (std::uint32_t Latch : L.Latches) {
      const auto &Instrs = F.Blocks[Latch].Instructions;
      std::int64_t Last = -1;
      for (std::uint32_t I = 0; I < Instrs.size(); ++I)
        if (Instrs[I].Op == ir::Opcode::Store && ExactCell(Instrs[I], Cell))
          Last = I;
      if (Last < 0) {
        AllLatches = false;
        break;
      }
      std::uint32_t Tail = 0;
      for (std::uint32_t I = static_cast<std::uint32_t>(Last);
           I < Instrs.size(); ++I)
        Tail += AnnotatedCost(Instrs[I]);
      Tail += StaticEoiCost;
      // A conditional latch gets its eoi in a split block with its own
      // branch back to the header.
      if (Instrs.back().Op == ir::Opcode::CondBr)
        Tail += staticOpCost(ir::Opcode::Br);
      WorstTail = std::max(WorstTail, Tail);
      if (Latch == L.Latches[0]) {
        RepBlock = Latch;
        RepIndex = static_cast<std::uint32_t>(Last);
      }
    }
    if (!AllLatches)
      continue;

    std::uint32_t Window = WorstTail + HeadCost;
    if (!Out.Serial.Found || Window < Out.Serial.WindowCycles) {
      Out.Serial.Found = true;
      Out.Serial.BaseA = Cell.BaseA;
      Out.Serial.BaseB = Cell.BaseB;
      Out.Serial.Offset = Cell.Offset;
      Out.Serial.LoadBlock = L.Header;
      Out.Serial.LoadIndex = static_cast<std::uint32_t>(LoadIdx);
      Out.Serial.StoreBlock = RepBlock;
      Out.Serial.StoreIndex = RepIndex;
      Out.Serial.WindowCycles = Window;
    }
  }
}
