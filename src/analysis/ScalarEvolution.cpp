//===- analysis/ScalarEvolution.cpp ---------------------------------------==//

#include "analysis/ScalarEvolution.h"

#include "ir/RegUse.h"

#include <algorithm>
#include <deque>

using namespace jrpm;
using namespace jrpm::analysis;

bool analysis::affineAdd(std::int64_t A, std::int64_t B, std::int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}

bool analysis::affineMul(std::int64_t A, std::int64_t B, std::int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

namespace {

const AffineExpr Invalid = {};

AffineExpr constant(std::int64_t C) {
  AffineExpr E;
  E.Valid = true;
  E.Const = C;
  return E;
}

AffineExpr symbol(std::uint16_t Reg) {
  AffineExpr E;
  E.Valid = true;
  E.Symbols[Reg] = 1;
  return E;
}

/// X + Scale * Y with wrap guards on every coefficient combination.
AffineExpr combine(const AffineExpr &X, const AffineExpr &Y,
                   std::int64_t Scale) {
  if (!X.Valid || !Y.Valid)
    return Invalid;
  AffineExpr Out = X;
  std::int64_t Term = 0;
  if (!affineMul(Y.Const, Scale, Term) ||
      !affineAdd(Out.Const, Term, Out.Const))
    return Invalid;
  if (!affineMul(Y.IterCoeff, Scale, Term) ||
      !affineAdd(Out.IterCoeff, Term, Out.IterCoeff))
    return Invalid;
  for (const auto &[Reg, Coeff] : Y.Symbols) {
    if (!affineMul(Coeff, Scale, Term))
      return Invalid;
    std::int64_t &Slot = Out.Symbols[Reg];
    if (!affineAdd(Slot, Term, Slot))
      return Invalid;
    if (Slot == 0)
      Out.Symbols.erase(Reg);
  }
  return Out;
}

/// X scaled by a compile-time constant.
AffineExpr scale(const AffineExpr &X, std::int64_t By) {
  AffineExpr Zero = constant(0);
  return combine(Zero, X, By);
}

constexpr unsigned MaxDepth = 16;

} // namespace

LoopScev::LoopScev(const ir::Function &Fn, const Loop &Lp,
                   const InductionInfo &Sc)
    : F(Fn), L(Lp), Scalars(Sc) {
  // Loop-local numbering, header first.
  LocalId[L.Header] = 0;
  for (std::uint32_t B : L.Blocks)
    if (B != L.Header)
      LocalId.emplace(B, static_cast<std::uint32_t>(LocalId.size()));
  std::uint32_t N = static_cast<std::uint32_t>(LocalId.size());

  // Intra-iteration predecessors: loop-internal edges minus backedges.
  std::vector<std::vector<std::uint32_t>> Preds(N);
  std::vector<std::uint32_t> Succs;
  for (std::uint32_t B : L.Blocks) {
    Succs.clear();
    F.Blocks[B].appendSuccessors(Succs);
    for (std::uint32_t S : Succs)
      if (L.contains(S) && S != L.Header)
        Preds[LocalId.at(S)].push_back(LocalId.at(B));
  }

  // Iterative dominators over the body DAG rooted at the header.
  IterDom.assign(N, std::vector<bool>(N, true));
  IterDom[0].assign(N, false);
  IterDom[0][0] = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::uint32_t B = 1; B < N; ++B) {
      std::vector<bool> Meet(N, true);
      if (Preds[B].empty())
        Meet.assign(N, false); // unreachable within an iteration
      for (std::uint32_t P : Preds[B])
        for (std::uint32_t D = 0; D < N; ++D)
          Meet[D] = Meet[D] && IterDom[P][D];
      Meet[B] = true;
      if (Meet != IterDom[B]) {
        IterDom[B] = Meet;
        Changed = true;
      }
    }
  }

  // Definition sites (keep two per register: one is the interesting case,
  // more than one disqualifies the temp path anyway).
  for (std::uint32_t B : L.Blocks) {
    const auto &Instrs = F.Blocks[B].Instructions;
    for (std::uint32_t I = 0; I < Instrs.size(); ++I) {
      std::uint16_t D = ir::definedReg(Instrs[I]);
      if (D == ir::NoReg)
        continue;
      auto &Sites = DefsIn[D];
      if (Sites.size() < 2)
        Sites.push_back({B, I});
      if (Instrs[I].Op == ir::Opcode::AddImm && Instrs[I].A == D &&
          Scalars.Inductors.count(D))
        UpdateAt[D] = {B, I};
    }
  }
}

bool LoopScev::iterDominates(std::uint32_t Dom, std::uint32_t Block) const {
  auto DIt = LocalId.find(Dom);
  auto BIt = LocalId.find(Block);
  if (DIt == LocalId.end() || BIt == LocalId.end())
    return false;
  return IterDom[BIt->second][DIt->second];
}

bool LoopScev::mustFollow(std::uint32_t DefB, std::uint32_t DefI,
                          std::uint32_t UseB, std::uint32_t UseI) const {
  if (DefB == UseB)
    return DefI < UseI;
  return iterDominates(DefB, UseB);
}

bool LoopScev::mayFollow(std::uint32_t B1, std::uint32_t I1, std::uint32_t B2,
                         std::uint32_t I2) const {
  if (B1 == B2 && I2 > I1)
    return true;
  // Forward reachability from B1 without re-entering the header.
  std::vector<bool> Seen(F.numBlocks(), false);
  std::deque<std::uint32_t> Work;
  std::vector<std::uint32_t> Succs;
  F.Blocks[B1].appendSuccessors(Succs);
  for (std::uint32_t S : Succs)
    if (L.contains(S) && S != L.Header)
      Work.push_back(S);
  while (!Work.empty()) {
    std::uint32_t B = Work.front();
    Work.pop_front();
    if (Seen[B])
      continue;
    Seen[B] = true;
    if (B == B2)
      return true;
    Succs.clear();
    F.Blocks[B].appendSuccessors(Succs);
    for (std::uint32_t S : Succs)
      if (L.contains(S) && S != L.Header && !Seen[S])
        Work.push_back(S);
  }
  return false;
}

AffineExpr LoopScev::valueAt(std::uint16_t Reg, std::uint32_t Block,
                             std::uint32_t Index) const {
  return valueAtImpl(Reg, Block, Index, 0);
}

AffineExpr LoopScev::valueAtImpl(std::uint16_t Reg, std::uint32_t Block,
                                 std::uint32_t Index, unsigned Depth) const {
  if (Reg == ir::NoReg)
    return constant(0);
  if (Depth > MaxDepth)
    return Invalid;

  // Loop invariant: a fixed symbolic value.
  if (std::find(Scalars.Invariants.begin(), Scalars.Invariants.end(), Reg) !=
      Scalars.Invariants.end())
    return symbol(Reg);

  // Basic inductor: entry value + step * i, plus one step once the use is
  // provably past the update. A path-dependent position is not affine.
  auto IndIt = Scalars.Inductors.find(Reg);
  if (IndIt != Scalars.Inductors.end()) {
    auto UpIt = UpdateAt.find(Reg);
    if (UpIt == UpdateAt.end())
      return Invalid;
    AffineExpr E = symbol(Reg);
    E.IterCoeff = IndIt->second;
    auto [UB, UI] = UpIt->second;
    if (mustFollow(UB, UI, Block, Index)) {
      if (!affineAdd(E.Const, IndIt->second, E.Const))
        return Invalid;
      return E;
    }
    if (!mayFollow(UB, UI, Block, Index))
      return E;
    return Invalid;
  }

  // Carried reductions and other carried scalars: not affine.
  if (Scalars.Reductions.count(Reg) ||
      std::find(Scalars.OtherCarried.begin(), Scalars.OtherCarried.end(),
                Reg) != Scalars.OtherCarried.end())
    return Invalid;

  // Iteration-local temporary: a single in-loop definition that must have
  // executed before the use, with affine-combinable operands.
  auto DefIt = DefsIn.find(Reg);
  if (DefIt == DefsIn.end() || DefIt->second.size() != 1)
    return Invalid;
  auto [DB, DI] = DefIt->second.front();
  if (!mustFollow(DB, DI, Block, Index))
    return Invalid;
  const ir::Instruction &Def = F.Blocks[DB].Instructions[DI];
  switch (Def.Op) {
  case ir::Opcode::ConstI:
    return constant(Def.Imm);
  case ir::Opcode::Mov:
    return valueAtImpl(Def.A, DB, DI, Depth + 1);
  case ir::Opcode::AddImm:
    return combine(valueAtImpl(Def.A, DB, DI, Depth + 1), constant(Def.Imm),
                   1);
  case ir::Opcode::Add:
    return combine(valueAtImpl(Def.A, DB, DI, Depth + 1),
                   valueAtImpl(Def.B, DB, DI, Depth + 1), 1);
  case ir::Opcode::Sub:
    return combine(valueAtImpl(Def.A, DB, DI, Depth + 1),
                   valueAtImpl(Def.B, DB, DI, Depth + 1), -1);
  case ir::Opcode::Mul: {
    AffineExpr A = valueAtImpl(Def.A, DB, DI, Depth + 1);
    AffineExpr B = valueAtImpl(Def.B, DB, DI, Depth + 1);
    if (A.Valid && A.IterCoeff == 0 && A.Symbols.empty())
      return scale(B, A.Const);
    if (B.Valid && B.IterCoeff == 0 && B.Symbols.empty())
      return scale(A, B.Const);
    return Invalid;
  }
  case ir::Opcode::Shl: {
    AffineExpr A = valueAtImpl(Def.A, DB, DI, Depth + 1);
    AffineExpr B = valueAtImpl(Def.B, DB, DI, Depth + 1);
    if (B.Valid && B.IterCoeff == 0 && B.Symbols.empty() && B.Const >= 0 &&
        B.Const < 62)
      return scale(A, std::int64_t(1) << B.Const);
    return Invalid;
  }
  default:
    return Invalid;
  }
}

AffineExpr LoopScev::addressAt(const ir::Instruction &I, std::uint32_t Block,
                               std::uint32_t Index) const {
  AffineExpr E = combine(valueAtImpl(I.A, Block, Index, 0),
                         valueAtImpl(I.B, Block, Index, 0), 1);
  return combine(E, constant(I.Imm), 1);
}
