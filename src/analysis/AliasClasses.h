//===- analysis/AliasClasses.h - Conservative allocation-site aliasing -----==//
//
// Flow-insensitive, intraprocedural points-to analysis over the bump
// allocator's Alloc sites. Every register is summarised by the set of
// allocation sites its value may be derived from; registers whose value can
// come from memory, calls, or parameters are Unknown. Two memory accesses
// whose address registers resolve to disjoint, fully known site sets can
// never touch the same heap word — the only "no alias" answer the
// dependence analysis trusts.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_ALIASCLASSES_H
#define JRPM_ANALYSIS_ALIASCLASSES_H

#include "ir/IR.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace analysis {

/// What a register's value may point into. `Unknown` subsumes everything;
/// otherwise `Sites` lists the Alloc instructions (by site id) the value
/// can be derived from. An empty, non-Unknown set means "provably not
/// derived from any allocation" (a pure scalar).
struct AliasSet {
  bool Unknown = false;
  BitVector Sites;

  bool disjointFrom(const AliasSet &Other) const;
};

/// Allocation-site points-to sets for one function.
class AliasClasses {
public:
  explicit AliasClasses(const ir::Function &F);

  std::uint32_t numSites() const { return NumSites; }

  /// The points-to summary of \p Reg.
  const AliasSet &setFor(std::uint16_t Reg) const { return Sets[Reg]; }

  /// The combined points-to set of an address formed from base registers
  /// \p A and \p B (either may be ir::NoReg). If neither register carries a
  /// known site, the address is treated as Unknown: an absolute address can
  /// land anywhere in the word-addressed heap.
  AliasSet addressSet(std::uint16_t A, std::uint16_t B) const;

  /// True unless the two addresses provably dereference disjoint
  /// allocation sites.
  bool mayAlias(const AliasSet &X, const AliasSet &Y) const {
    return !X.disjointFrom(Y);
  }

private:
  std::uint32_t NumSites = 0;
  std::vector<AliasSet> Sets;
};

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_ALIASCLASSES_H
