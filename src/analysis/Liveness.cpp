//===- analysis/Liveness.cpp ----------------------------------------------==//

#include "analysis/Liveness.h"

#include "analysis/RegUse.h"

using namespace jrpm;
using namespace jrpm::analysis;

Liveness::Liveness(const ir::Function &F) {
  std::uint32_t N = F.numBlocks();
  std::uint32_t Regs = F.NumRegs;
  LiveIn.assign(N, BitVector(Regs));
  LiveOut.assign(N, BitVector(Regs));

  // Per-block USE (read before any write) and DEF sets.
  std::vector<BitVector> Use(N, BitVector(Regs));
  std::vector<BitVector> Def(N, BitVector(Regs));
  for (std::uint32_t B = 0; B < N; ++B) {
    for (const ir::Instruction &I : F.Blocks[B].Instructions) {
      forEachUsedReg(I, [&](std::uint16_t R) {
        if (!Def[B].test(R))
          Use[B].set(R);
      });
      std::uint16_t D = definedReg(I);
      if (D != ir::NoReg)
        Def[B].set(D);
    }
  }

  std::vector<std::uint32_t> Succs;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate in reverse block order as a cheap approximation of reverse
    // topological order; the fixpoint loop handles the rest.
    for (std::uint32_t BI = N; BI-- > 0;) {
      Succs.clear();
      F.Blocks[BI].appendSuccessors(Succs);
      BitVector NewOut(Regs);
      for (std::uint32_t S : Succs)
        NewOut.unionWith(LiveIn[S]);
      BitVector NewIn = NewOut;
      NewIn.subtract(Def[BI]);
      NewIn.unionWith(Use[BI]);
      if (!(NewOut == LiveOut[BI]) || !(NewIn == LiveIn[BI])) {
        LiveOut[BI] = std::move(NewOut);
        LiveIn[BI] = std::move(NewIn);
        Changed = true;
      }
    }
  }
}
