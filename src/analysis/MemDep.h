//===- analysis/MemDep.h - Loop-carried memory dependence analysis ---------==//
//
// Static memory dependence analysis over the mini IR, the compile-time
// counterpart of the TEST tracer's dynamic arc measurement: def-use chains
// over registers (reaching definitions), allocation-site alias classes
// (AliasClasses.h), and per-natural-loop classification of cross-iteration
// RAW/WAR/WAW dependences between heap accesses.
//
// Address algebra: an access reads/writes heap word R[A] + R[B] + Imm.
// Two accesses over the same unordered register pair compare exactly:
//   - all regs loop-invariant:   same cell iff the immediates match;
//   - one shared basic inductor (step s), rest invariant: the address gap
//     is (Imm1 - Imm2) plus a multiple of s, so the accesses collide in
//     some iteration pair iff s divides the immediate gap.
// Everything else falls back to the alias classes, and to "may depend"
// when those cannot separate the accesses.
//
// The analysis also detects the *serial memory recurrence* shape used by
// the static pre-filter: a store to one loop-invariant cell in every latch
// whose value is reloaded at the top of the header, with so few cycles
// between store and reload that the resulting inter-thread arc can never
// beat the Hydra store-to-load communication delay. Such a loop is as
// serial as memory can make it.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_MEMDEP_H
#define JRPM_ANALYSIS_MEMDEP_H

#include "analysis/AliasClasses.h"
#include "analysis/Dominators.h"
#include "analysis/InductionInfo.h"
#include "analysis/LoopInfo.h"
#include "ir/IR.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace analysis {

/// One register definition site.
struct DefSite {
  std::uint32_t Block = 0;
  std::uint32_t Index = 0; // instruction index within the block
  std::uint16_t Reg = 0;
};

/// Reaching definitions over virtual registers: for any use, the set of
/// definition sites whose value may still be live there.
class DefUseChains {
public:
  explicit DefUseChains(const ir::Function &F);

  const std::vector<DefSite> &defSites() const { return Sites; }

  /// Definition sites of \p Reg that may reach the use at instruction
  /// \p Index of \p Block. Function parameters reach as an implicit site
  /// not listed here; `mayReadParam` reports that case.
  std::vector<std::uint32_t> reachingDefs(std::uint32_t Block,
                                          std::uint32_t Index,
                                          std::uint16_t Reg) const;

  /// True if the use may still observe the register's initial (parameter
  /// or zero-initialised) value.
  bool mayReadParam(std::uint32_t Block, std::uint32_t Index,
                    std::uint16_t Reg) const;

private:
  BitVector liveSitesAt(std::uint32_t Block, std::uint32_t Index,
                        bool &ParamReaches, std::uint16_t Reg) const;

  const ir::Function &F;
  std::vector<DefSite> Sites;
  std::vector<std::vector<std::uint32_t>> SitesOfReg; // reg -> site ids
  std::vector<BitVector> In;    // per block: sites reaching block entry
  std::vector<bool> ParamIn;    // per block x reg flattened: initial value
};

/// One heap access inside a loop.
struct MemAccess {
  std::uint32_t Block = 0;
  std::uint32_t Index = 0;
  bool IsStore = false;
  std::uint16_t BaseA = ir::NoReg;
  std::uint16_t BaseB = ir::NoReg;
  std::int64_t Offset = 0;
};

/// Kind of a cross-iteration dependence. A store/load pair over a fixed
/// cell realises both the flow (RAW) and anti (WAR) direction depending on
/// which iteration runs first, so such pairs are reported under Raw. `May`
/// marks pairs the analysis cannot separate.
enum class DepKind : std::uint8_t { Raw, War, Waw, May };

/// Returns a short stable name for \p Kind (tables, JSON).
const char *depKindName(DepKind Kind);

/// One classified cross-iteration dependence between two accesses.
struct CarriedDep {
  DepKind Kind = DepKind::May;
  MemAccess Src; // the store (for Raw/War); either access for May/Waw
  MemAccess Dst;
  /// Iteration distance when known, 0 when unknown/any.
  std::int64_t Distance = 0;
};

/// The pre-filter's target shape: see file comment.
struct SerialRecurrence {
  bool Found = false;
  std::uint16_t BaseA = ir::NoReg;
  std::uint16_t BaseB = ir::NoReg;
  std::int64_t Offset = 0;
  std::uint32_t LoadBlock = 0, LoadIndex = 0;
  std::uint32_t StoreBlock = 0, StoreIndex = 0; // representative latch store
  /// Worst-case profiled cycles from the latch store to the next
  /// iteration's header reload, annotation overheads included.
  std::uint32_t WindowCycles = 0;
};

/// Memory dependence summary of one natural loop.
struct LoopMemDep {
  std::vector<CarriedDep> Carried;
  std::uint32_t NumRaw = 0, NumWar = 0, NumWaw = 0, NumMay = 0;
  /// Cross-iteration pairs proven independent (the static win).
  std::uint32_t IndependentPairs = 0;
  std::uint32_t NumLoads = 0, NumStores = 0;
  bool HasCall = false;
  bool HasAlloc = false;
  /// No carried or may memory dependences, no carried scalars beyond
  /// inductors/reductions, and no calls: a compiler could parallelise this
  /// loop outright, no speculation needed.
  bool ProvablyParallel = false;
  SerialRecurrence Serial;
};

/// Memory dependence analysis of one function, per natural loop.
class MemDepAnalysis {
public:
  MemDepAnalysis(const ir::Function &F, const DominatorTree &DT,
                 const LoopInfo &LI, const std::vector<InductionInfo> &Scalars);

  const LoopMemDep &loopDep(std::uint32_t LoopIdx) const {
    return Deps[LoopIdx];
  }
  const std::vector<LoopMemDep> &allLoopDeps() const { return Deps; }
  const AliasClasses &aliases() const { return AC; }
  const DefUseChains &defUse() const { return DU; }

private:
  void analyzeLoop(const ir::Function &F, const DominatorTree &DT,
                   const Loop &L, const InductionInfo &Scalars,
                   LoopMemDep &Out);
  void findSerialRecurrence(const ir::Function &F, const Loop &L,
                            const InductionInfo &Scalars, LoopMemDep &Out);

  AliasClasses AC;
  DefUseChains DU;
  std::vector<LoopMemDep> Deps;
};

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_MEMDEP_H
