//===- analysis/DepTest.h - Affine dependence tests + memory effects -------==//
//
// Classical data-dependence tests over pairs of affine access functions
// (ScalarEvolution.h), in the J-Parallelio style of bytecode-level loop
// dependence testing:
//
//   ZIV        both strides zero: equal constants collide every iteration,
//              different constants never do.
//   strong SIV equal nonzero strides: the offset gap is either divisible
//              by the stride (exact iteration distance) or the two address
//              lattices never meet.
//   weak-zero  one stride zero: the moving access hits the fixed cell in
//   SIV        at most one iteration, and only if that iteration index is
//              a nonnegative integer.
//   GCD        unequal nonzero strides: no dependence unless
//              gcd(s1, s2) divides the offset gap (Banerjee-style
//              feasibility; direction unconstrained without trip counts).
//
// Affine forms are only comparable over the same symbolic base; everything
// else falls back to allocation-site alias classes and then to "may".
// The same header carries the per-function memory-effect summaries
// (reads/writes/allocates, transitively through calls) that let loops
// containing calls to pure or read-only functions keep a provably-parallel
// verdict instead of degrading to "may".
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_DEPTEST_H
#define JRPM_ANALYSIS_DEPTEST_H

#include "analysis/AliasClasses.h"
#include "analysis/ScalarEvolution.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace analysis {

/// Which dependence test decided a pair.
enum class DepTestKind : std::uint8_t {
  Ziv,         ///< zero-index-variable: both strides zero
  StrongSiv,   ///< equal nonzero strides
  WeakZeroSiv, ///< exactly one stride zero
  Gcd,         ///< unequal nonzero strides, gcd feasibility
  AliasClass,  ///< non-affine or unrelated bases, alias classes decided
  MayFallback, ///< nothing could separate the pair
};

/// Returns a short stable name for \p Kind (tables, JSON).
const char *depTestKindName(DepTestKind Kind);

/// The outcome of one pair test.
enum class DepOutcome : std::uint8_t { Independent, Carried, May };

const char *depOutcomeName(DepOutcome O);

struct DepTestResult {
  DepTestKind Test = DepTestKind::MayFallback;
  DepOutcome Outcome = DepOutcome::May;
  /// Signed cross-iteration distance when DistanceExact: the access X of
  /// iteration i collides with the access Y of iteration i + Distance.
  /// 0 with DistanceExact=false means unknown/any.
  std::int64_t Distance = 0;
  bool DistanceExact = false;
};

/// Tests two affine access functions over the same loop. Both forms must
/// be Valid and share a symbolic base; callers route anything else through
/// testWithFallback.
DepTestResult testAffinePair(const AffineExpr &X, const AffineExpr &Y);

/// Full lattice: affine tests when possible, alias classes otherwise.
/// \p SetX / \p SetY are the accesses' allocation-site sets.
DepTestResult testWithFallback(const AffineExpr &X, const AffineExpr &Y,
                               const AliasSet &SetX, const AliasSet &SetY);

//===----------------------------------------------------------------------===//
// Per-function memory-effect summaries
//===----------------------------------------------------------------------===//

/// What a function (and everything it can call) may do to the heap.
struct FuncMemEffects {
  bool ReadsHeap = false;
  bool WritesHeap = false;
  bool Allocates = false;

  bool pure() const { return !ReadsHeap && !WritesHeap && !Allocates; }
  bool readOnly() const { return !WritesHeap && !Allocates; }
};

/// Transitive memory-effect summary of every function in \p M (indexed by
/// function number). Out-of-range callee indices are treated as
/// read-write-allocating, so a malformed module can only lose precision.
std::vector<FuncMemEffects> computeMemEffects(const ir::Module &M);

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_DEPTEST_H
