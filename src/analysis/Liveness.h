//===- analysis/Liveness.h - Backward register liveness --------------------==//

#ifndef JRPM_ANALYSIS_LIVENESS_H
#define JRPM_ANALYSIS_LIVENESS_H

#include "ir/IR.h"
#include "support/BitVector.h"

#include <vector>

namespace jrpm {
namespace analysis {

/// Classic backward may-liveness over virtual registers.
class Liveness {
public:
  explicit Liveness(const ir::Function &F);

  /// Registers live on entry to \p Block.
  const BitVector &liveIn(std::uint32_t Block) const { return LiveIn[Block]; }

  /// Registers live on exit from \p Block.
  const BitVector &liveOut(std::uint32_t Block) const {
    return LiveOut[Block];
  }

private:
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;
};

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_LIVENESS_H
