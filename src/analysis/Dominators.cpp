//===- analysis/Dominators.cpp --------------------------------------------==//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace jrpm;
using namespace jrpm::analysis;

DominatorTree::DominatorTree(const ir::Function &F) {
  std::uint32_t N = F.numBlocks();
  Idom.assign(N, 0);
  Depth.assign(N, 0);
  Reachable.assign(N, false);

  // Depth-first search from the entry to compute postorder.
  std::vector<std::uint32_t> PostOrder;
  PostOrder.reserve(N);
  std::vector<std::uint32_t> Stack = {0};
  std::vector<std::uint8_t> State(N, 0); // 0 unvisited, 1 open, 2 done
  std::vector<std::uint32_t> Succs;
  while (!Stack.empty()) {
    std::uint32_t B = Stack.back();
    if (State[B] == 0) {
      State[B] = 1;
      Reachable[B] = true;
      Succs.clear();
      F.Blocks[B].appendSuccessors(Succs);
      for (std::uint32_t S : Succs)
        if (State[S] == 0)
          Stack.push_back(S);
    } else {
      Stack.pop_back();
      if (State[B] == 1) {
        State[B] = 2;
        PostOrder.push_back(B);
      }
    }
  }

  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  std::vector<std::uint32_t> RpoIndex(N, 0);
  for (std::uint32_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  auto Preds = F.computePredecessors();

  // Unreachable blocks dominate only themselves.
  for (std::uint32_t B = 0; B < N; ++B)
    Idom[B] = B;
  std::vector<bool> Defined(N, false);
  Defined[0] = true;

  auto Intersect = [&](std::uint32_t A, std::uint32_t B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::uint32_t B : Rpo) {
      if (B == 0)
        continue;
      std::uint32_t NewIdom = N; // sentinel: none yet
      for (std::uint32_t P : Preds[B]) {
        // Only predecessors whose idom is already defined participate.
        if (!Reachable[P] || !Defined[P])
          continue;
        if (NewIdom == N)
          NewIdom = P;
        else
          NewIdom = Intersect(P, NewIdom);
      }
      if (NewIdom != N && (!Defined[B] || Idom[B] != NewIdom)) {
        Idom[B] = NewIdom;
        Defined[B] = true;
        Changed = true;
      }
    }
  }

  // Compute dominator-tree depths for the dominance query.
  for (std::uint32_t B : Rpo) {
    if (B == 0) {
      Depth[B] = 0;
      continue;
    }
    Depth[B] = Depth[Idom[B]] + 1;
  }
}

bool DominatorTree::dominates(std::uint32_t A, std::uint32_t B) const {
  assert(A < Idom.size() && B < Idom.size() && "block out of range");
  if (!Reachable[A] || !Reachable[B])
    return A == B;
  while (Depth[B] > Depth[A])
    B = Idom[B];
  return A == B;
}
