//===- analysis/InductionInfo.h - Inductors, reductions, carried scalars ---==//
//
// Scalar analysis of one loop (Section 4.1): recognises loop inductors
// (`r = r + c` once per iteration) and sum reductions, and classifies the
// remaining loop-carried scalars. "Loop inductors, which are dependencies
// that can be eliminated by the compiler, are ignored so that potentially
// parallel loops are not overlooked."
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_INDUCTIONINFO_H
#define JRPM_ANALYSIS_INDUCTIONINFO_H

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"

#include <cstdint>
#include <map>
#include <vector>

namespace jrpm {
namespace analysis {

/// The kind of reduction a register participates in.
enum class ReductionKind { SumInt, SumFloat };

/// Scalar classification of one loop's registers.
struct InductionInfo {
  /// Basic inductors: register -> per-iteration step.
  std::map<std::uint16_t, std::int64_t> Inductors;
  /// Sum reductions: register -> kind.
  std::map<std::uint16_t, ReductionKind> Reductions;
  /// Loop-carried registers that are neither inductors nor reductions.
  std::vector<std::uint16_t> OtherCarried;
  /// Registers live into the loop header but never defined inside the loop
  /// (loop invariants; register-allocated by the TLS compiler).
  std::vector<std::uint16_t> Invariants;
};

/// Computes the scalar classification of loop \p L.
InductionInfo analyzeLoopScalars(const ir::Function &F, const Loop &L,
                                 const DominatorTree &DT,
                                 const Liveness &LV);

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_INDUCTIONINFO_H
