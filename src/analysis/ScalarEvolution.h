//===- analysis/ScalarEvolution.h - Affine evolution of loop scalars -------==//
//
// Symbolic stride analysis over one innermost loop: expresses register
// values and effective addresses as affine functions of the iteration
// counter,
//
//   value(i) = Const + sum_r Coeff[r] * sym(r) + IterCoeff * i
//
// where every sym(r) is the (unknown but fixed) value of a loop-invariant
// register — or, for a basic inductor, its value on loop entry — and i
// counts completed iterations from 0. The builder walks the in-loop def
// chains (constants, moves, add/sub, multiply and shift by constants,
// inductor steps) and refuses anything else: conditional definitions,
// carried scalars, values escaping through memory, and any coefficient
// arithmetic that could wrap 64-bit signed range all yield the invalid
// form, so a Valid AffineExpr is a proof, not a guess.
//
// Positioning matters for inductors: the same register reads as
// base + step*i before its update and base + step*(i+1) after it. The
// builder resolves the use site against the update site with
// intra-iteration dominance (dominators of the loop body with backedges
// removed) and bails when the relative order is path-dependent.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_SCALAREVOLUTION_H
#define JRPM_ANALYSIS_SCALAREVOLUTION_H

#include "analysis/InductionInfo.h"
#include "analysis/LoopInfo.h"
#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <vector>

namespace jrpm {
namespace analysis {

/// An affine form over the loop's iteration counter. `Symbols` maps a
/// register to its coefficient; a key that is a loop invariant denotes the
/// register's (constant) value, a key that is a basic inductor denotes its
/// value on loop entry. Invalid means "not provably affine".
struct AffineExpr {
  bool Valid = false;
  std::int64_t Const = 0;
  std::int64_t IterCoeff = 0;
  std::map<std::uint16_t, std::int64_t> Symbols;

  /// Two affine forms are comparable when their symbolic parts agree; the
  /// difference is then the constant/stride gap alone.
  bool sameBase(const AffineExpr &O) const {
    return Valid && O.Valid && Symbols == O.Symbols;
  }
};

/// Affine scalar evolution of one innermost loop.
class LoopScev {
public:
  LoopScev(const ir::Function &F, const Loop &L, const InductionInfo &Scalars);

  /// Affine form of the value \p Reg holds when read by the instruction at
  /// (\p Block, \p Index) inside the loop. ir::NoReg reads as zero.
  AffineExpr valueAt(std::uint16_t Reg, std::uint32_t Block,
                     std::uint32_t Index) const;

  /// Affine form of the effective address R[A]+R[B]+Imm of the memory
  /// access at (\p Block, \p Index).
  AffineExpr addressAt(const ir::Instruction &I, std::uint32_t Block,
                       std::uint32_t Index) const;

  /// True when every intra-iteration path from the loop header to \p Block
  /// passes through \p Dom (reflexive; backedges removed).
  bool iterDominates(std::uint32_t Dom, std::uint32_t Block) const;

  /// True when the instruction at (DefB, DefI) is guaranteed to have
  /// executed before (UseB, UseI) runs within the same iteration.
  bool mustFollow(std::uint32_t DefB, std::uint32_t DefI, std::uint32_t UseB,
                  std::uint32_t UseI) const;

  /// True when (B2, I2) can execute after (B1, I1) within one iteration
  /// (forward intra-iteration reachability; never crosses the header).
  bool mayFollow(std::uint32_t B1, std::uint32_t I1, std::uint32_t B2,
                 std::uint32_t I2) const;

private:
  AffineExpr valueAtImpl(std::uint16_t Reg, std::uint32_t Block,
                         std::uint32_t Index, unsigned Depth) const;

  const ir::Function &F;
  const Loop &L;
  const InductionInfo &Scalars;
  /// Loop-local block numbering for the intra-iteration dominator sets.
  std::map<std::uint32_t, std::uint32_t> LocalId;
  /// Per local block: bit-set (as vector<bool>) of local dominator ids.
  std::vector<std::vector<bool>> IterDom;
  /// Per inductor register: its unique in-loop update site.
  std::map<std::uint16_t, std::pair<std::uint32_t, std::uint32_t>> UpdateAt;
  /// Per register: in-loop definition sites (at most the first two kept).
  std::map<std::uint16_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      DefsIn;
};

/// Checked i64 helpers shared with the dependence tests: false on wrap.
bool affineAdd(std::int64_t A, std::int64_t B, std::int64_t &Out);
bool affineMul(std::int64_t A, std::int64_t B, std::int64_t &Out);

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_SCALAREVOLUTION_H
