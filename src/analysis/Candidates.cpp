//===- analysis/Candidates.cpp --------------------------------------------==//

#include "analysis/Candidates.h"

#include "analysis/RegUse.h"

#include <algorithm>
#include <set>

using namespace jrpm;
using namespace jrpm::analysis;

FunctionAnalysis::FunctionAnalysis(const ir::Function &F)
    : DT(F), LI(F, DT), LV(F) {
  LoopScalars.reserve(LI.loops().size());
  for (const Loop &L : LI.loops())
    LoopScalars.push_back(analyzeLoopScalars(F, L, DT, LV));
  MemDep = std::make_unique<MemDepAnalysis>(F, DT, LI, LoopScalars);
}

const char *analysis::rejectKindName(RejectKind Kind) {
  switch (Kind) {
  case RejectKind::None:
    return "none";
  case RejectKind::ReturnsFromFunction:
    return "returns";
  case RejectKind::AllocatesHeap:
    return "allocates";
  case RejectKind::CallsAllocator:
    return "calls-allocator";
  case RejectKind::SerialCarriedScalar:
    return "serial-scalar";
  case RejectKind::SerialMemoryRecurrence:
    return "serial-memory";
  case RejectKind::AffineSerialZiv:
    return "affine-ziv";
  case RejectKind::AffineSerialSiv:
    return "affine-siv";
  }
  return "none";
}

bool analysis::rejectKindFromName(const std::string &Name, RejectKind &Out) {
  for (RejectKind Kind : AllRejectKinds)
    if (Name == rejectKindName(Kind)) {
      Out = Kind;
      return true;
    }
  return false;
}

/// Returns true if \p Reg is used before any definition in \p Block.
static bool usedBeforeDef(const ir::BasicBlock &Block, std::uint16_t Reg) {
  for (const ir::Instruction &I : Block.Instructions) {
    bool Used = false;
    forEachUsedReg(I, [&](std::uint16_t R) { Used |= R == Reg; });
    if (Used)
      return true;
    if (definedReg(I) == Reg)
      return false;
  }
  return false;
}

/// Returns true if carried register \p Reg is stored at the end of the loop
/// body and loaded at its start — the paper's "obvious" fully serializing
/// pattern. "Start" covers both the header (do/while conditions) and the
/// header's in-loop successors (while-loop body entries).
static bool isObviousSerializer(const ir::Function &F, const Loop &L,
                                std::uint16_t Reg) {
  bool DefInLatch = false;
  for (std::uint32_t Latch : L.Latches)
    for (const ir::Instruction &I : F.Blocks[Latch].Instructions)
      if (definedReg(I) == Reg)
        DefInLatch = true;
  if (!DefInLatch)
    return false;

  if (usedBeforeDef(F.Blocks[L.Header], Reg))
    return true;
  std::vector<std::uint32_t> Succs;
  F.Blocks[L.Header].appendSuccessors(Succs);
  for (std::uint32_t S : Succs)
    if (L.contains(S) && usedBeforeDef(F.Blocks[S], Reg))
      return true;
  return false;
}

ModuleAnalysis::ModuleAnalysis(const ir::Module &Mod,
                               const AnalysisOptions &Opts)
    : M(Mod) {
  Funcs.reserve(M.Functions.size());
  for (const ir::Function &F : M.Functions)
    Funcs.push_back(std::make_unique<FunctionAnalysis>(F));

  // Per-function memory-effect summaries subsume the old transitive
  // allocates-bit: call screening reads the Allocates flag, the oracle
  // also wants the read/write facts.
  Effects = computeMemEffects(M);

  for (std::uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    const ir::Function &F = M.Functions[FI];
    const FunctionAnalysis &FA = *Funcs[FI];
    std::set<std::uint16_t> Named;
    for (const auto &[Name, Reg] : F.NamedLocals)
      Named.insert(Reg);

    for (std::uint32_t LIdx = 0; LIdx < FA.LI.loops().size(); ++LIdx) {
      const Loop &L = FA.LI.loops()[LIdx];
      const InductionInfo &Scalars = FA.LoopScalars[LIdx];

      CandidateStl C;
      C.FuncIndex = FI;
      C.LoopIdx = LIdx;
      C.LoopId = static_cast<std::uint32_t>(Candidates.size());

      // Loops that return from the function or allocate heap memory (also
      // through calls) cannot be recompiled into speculative threads.
      for (std::uint32_t B : L.Blocks) {
        for (const ir::Instruction &I : F.Blocks[B].Instructions) {
          if (I.Op == ir::Opcode::Ret) {
            C.Rejected = true;
            C.Kind = RejectKind::ReturnsFromFunction;
            C.RejectReason = "loop body returns from the function";
          } else if (I.Op == ir::Opcode::Alloc) {
            C.Rejected = true;
            C.Kind = RejectKind::AllocatesHeap;
            C.RejectReason = "loop body allocates heap memory";
          } else if (I.Op == ir::Opcode::Call &&
                     Effects[static_cast<std::uint32_t>(I.Imm)].Allocates) {
            C.Rejected = true;
            C.Kind = RejectKind::CallsAllocator;
            C.RejectReason = "loop body calls an allocating function";
          }
        }
      }

      for (std::uint16_t Reg : Scalars.OtherCarried) {
        if (isObviousSerializer(F, L, Reg)) {
          C.Rejected = true;
          C.Kind = RejectKind::SerialCarriedScalar;
          C.RejectReason = "carried scalar stored at end of body and loaded "
                           "at start of body";
        }
        // Only named locals receive annotations; carried compiler
        // temporaries cannot occur by construction but are tolerated.
        if (Named.count(Reg))
          C.AnnotatedLocals.push_back(Reg);
      }
      std::sort(C.AnnotatedLocals.begin(), C.AnnotatedLocals.end());

      // The static dependence pre-filter (flag-gated; off reproduces the
      // paper's optimistic policy exactly). A loop whose every iteration
      // reloads at the header a cell stored at the latch, with the whole
      // store-to-reload window inside the forwarding budget, can never
      // produce an arc the speedup model values above 1x — profiling it
      // would only pay Figure-6 overhead for a guaranteed "no".
      if ((Opts.StaticPrefilter || Opts.AffineOracle) && !C.Rejected) {
        const LoopMemDep &MD = FA.MemDep->loopDep(LIdx);
        if (MD.Serial.Found &&
            MD.Serial.WindowCycles <= Opts.SerialArcBudget) {
          C.Rejected = true;
          C.Kind = RejectKind::SerialMemoryRecurrence;
          C.RejectReason = "serial memory recurrence: header reloads a cell "
                           "stored at every latch within the forwarding "
                           "budget";
        }
      }

      // The affine oracle runs on every loop (its verdicts feed lint and
      // the conformance harness); only provably-serial verdicts reject.
      if (Opts.AffineOracle) {
        LoopOracleResult R =
            runStaticOracle(F, L, Scalars, FA.MemDep->aliases(), Effects,
                            Opts.SerialArcBudget);
        if (R.Verdict == OracleVerdict::ProvablySerial && !C.Rejected) {
          C.Rejected = true;
          C.Kind = R.Test == DepTestKind::Ziv ? RejectKind::AffineSerialZiv
                                              : RejectKind::AffineSerialSiv;
          C.RejectReason = "affine serial recurrence: every iteration "
                           "reloads the previous iteration's store within "
                           "the forwarding budget";
        }
        OracleResults.push_back(std::move(R));
      }
      Candidates.push_back(std::move(C));
    }
  }
}

std::uint32_t ModuleAnalysis::loopCount() const {
  return static_cast<std::uint32_t>(Candidates.size());
}

std::uint32_t ModuleAnalysis::maxStaticLoopDepth() const {
  std::uint32_t Max = 0;
  for (const auto &FA : Funcs)
    Max = std::max(Max, FA->LI.maxDepth());
  return Max;
}
