//===- analysis/StaticOracle.h - Static speculation oracle -----------------==//
//
// Per-loop static verdicts built on the affine dependence tests
// (DepTest.h): the static counterpart of the dynamic TEST selector.
//
//   provably-serial    the loop carries a distance-1 memory recurrence —
//                      every iteration reloads, before its own store, a
//                      cell the previous iteration stored — and the whole
//                      store-to-reload window fits inside the Hydra
//                      forwarding budget. The speedup model can never
//                      value such a loop above 1x, so profiling it is
//                      wasted work and the pre-filter may reject it.
//   provably-parallel  every cross-iteration access pair is proven
//                      independent, carried scalars beyond inductors and
//                      reductions are absent, and calls (if any) are pure
//                      or read-only against a store-free body: a compiler
//                      could parallelise the loop outright.
//   unknown            everything else; only dynamic tracing can tell.
//
// Verdicts feed the flag-gated static pre-filter (AnalysisOptions::
// AffineOracle) and the jrpm-lint diagnostics. A provably-serial verdict
// is a rejection promise — the conformance harness holds it to a hard
// zero-false-rejection bar against dynamic TEST — so every condition
// below is there to keep the proof airtight:
//
//   - the loop is innermost and free of calls and allocations (a call of
//     statically unknown length would invalidate the cycle window);
//   - store and load execute in every iteration (they intra-iteration
//     dominate every latch) with the load strictly before the store;
//   - both addresses are affine over the same symbolic base and the
//     store-to-load iteration distance is exactly +1;
//   - no other store in the loop can ever touch the cell (alias-disjoint,
//     or affine over the same base with no integer collision distance);
//   - the longest intra-iteration path from the store to any latch end
//     plus the path from the header to the load, profiling annotations
//     included, fits the forwarding budget.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_STATICORACLE_H
#define JRPM_ANALYSIS_STATICORACLE_H

#include "analysis/AliasClasses.h"
#include "analysis/DepTest.h"
#include "analysis/InductionInfo.h"
#include "analysis/LoopInfo.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace analysis {

/// The oracle's verdict on one loop.
enum class OracleVerdict : std::uint8_t {
  Unknown,
  ProvablySerial,
  ProvablyParallel,
};

/// Returns a short stable name for \p V (tables, JSON).
const char *oracleVerdictName(OracleVerdict V);

/// One loop's oracle result, with enough detail for diagnostics.
struct LoopOracleResult {
  OracleVerdict Verdict = OracleVerdict::Unknown;
  /// The test that proved the serial recurrence (Ziv or StrongSiv);
  /// MayFallback for non-serial verdicts.
  DepTestKind Test = DepTestKind::MayFallback;
  /// Proven store-to-load iteration distance (serial verdicts only).
  std::int64_t Distance = 0;
  /// Worst-case store-to-reload cycle window (serial verdicts only).
  std::uint32_t WindowCycles = 0;
  /// Access-pair census over store-involving pairs.
  std::uint32_t TotalPairs = 0;
  std::uint32_t IndependentPairs = 0;
  std::uint32_t AffinePairs = 0; ///< pairs decided by an affine test
  std::uint32_t MayPairs = 0;
};

/// Runs the oracle on loop \p L of \p F. \p Effects are the module-wide
/// per-function memory summaries (computeMemEffects); \p SerialArcBudget
/// is the forwarding-delay bar a serial window must fit (cycles).
LoopOracleResult runStaticOracle(const ir::Function &F, const Loop &L,
                                 const InductionInfo &Scalars,
                                 const AliasClasses &AC,
                                 const std::vector<FuncMemEffects> &Effects,
                                 std::uint32_t SerialArcBudget);

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_STATICORACLE_H
