//===- analysis/DepTest.cpp -----------------------------------------------==//

#include "analysis/DepTest.h"

#include <cstdlib>

using namespace jrpm;
using namespace jrpm::analysis;

const char *analysis::depTestKindName(DepTestKind Kind) {
  switch (Kind) {
  case DepTestKind::Ziv:
    return "ziv";
  case DepTestKind::StrongSiv:
    return "strong-siv";
  case DepTestKind::WeakZeroSiv:
    return "weak-zero-siv";
  case DepTestKind::Gcd:
    return "gcd";
  case DepTestKind::AliasClass:
    return "alias-class";
  case DepTestKind::MayFallback:
    return "may-fallback";
  }
  return "may-fallback";
}

const char *analysis::depOutcomeName(DepOutcome O) {
  switch (O) {
  case DepOutcome::Independent:
    return "independent";
  case DepOutcome::Carried:
    return "carried";
  case DepOutcome::May:
    return "may";
  }
  return "may";
}

namespace {

std::int64_t gcd64(std::int64_t A, std::int64_t B) {
  A = A < 0 ? -A : A;
  B = B < 0 ? -B : B;
  while (B) {
    std::int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

DepTestResult make(DepTestKind Test, DepOutcome Outcome,
                   std::int64_t Distance = 0, bool Exact = false) {
  DepTestResult R;
  R.Test = Test;
  R.Outcome = Outcome;
  R.Distance = Distance;
  R.DistanceExact = Exact;
  return R;
}

} // namespace

DepTestResult analysis::testAffinePair(const AffineExpr &X,
                                       const AffineExpr &Y) {
  // Callers guarantee sameBase; the gap is then purely constant.
  std::int64_t Gap = 0; // X.Const - Y.Const
  if (__builtin_sub_overflow(X.Const, Y.Const, &Gap) || Gap == INT64_MIN)
    return make(DepTestKind::MayFallback, DepOutcome::May);
  std::int64_t SX = X.IterCoeff, SY = Y.IterCoeff;

  if (SX == 0 && SY == 0) {
    // ZIV: the two accesses touch fixed cells.
    if (Gap == 0)
      return make(DepTestKind::Ziv, DepOutcome::Carried, 1, true);
    return make(DepTestKind::Ziv, DepOutcome::Independent);
  }

  if (SX == SY) {
    // Strong SIV: same stride, so the lattices either coincide at an exact
    // iteration distance or interleave forever.
    if (Gap % SX != 0)
      return make(DepTestKind::StrongSiv, DepOutcome::Independent);
    std::int64_t D = Gap / SX; // safe: Gap > INT64_MIN excluded above
    if (D == 0)
      return make(DepTestKind::StrongSiv, DepOutcome::Independent);
    return make(DepTestKind::StrongSiv, DepOutcome::Carried, D, true);
  }

  if (SX == 0 || SY == 0) {
    // Weak-zero SIV: addrFixed = addrMoving(i) has at most one solution.
    std::int64_t S = SX == 0 ? SY : SX;
    std::int64_t G = SX == 0 ? Gap : -Gap; // fixed - moving entry offset
    if (G % S != 0)
      return make(DepTestKind::WeakZeroSiv, DepOutcome::Independent);
    std::int64_t Hit = G / S; // iteration where the moving access collides
    if (Hit < 0)
      return make(DepTestKind::WeakZeroSiv, DepOutcome::Independent);
    // The fixed access repeats every iteration, so the collision at
    // iteration `Hit` pairs with fixed accesses of every other iteration:
    // a carried dependence of unbounded direction.
    return make(DepTestKind::WeakZeroSiv, DepOutcome::Carried);
  }

  // GCD feasibility for unequal nonzero strides.
  if (Gap % gcd64(SX, SY) != 0)
    return make(DepTestKind::Gcd, DepOutcome::Independent);
  return make(DepTestKind::Gcd, DepOutcome::Carried);
}

DepTestResult analysis::testWithFallback(const AffineExpr &X,
                                         const AffineExpr &Y,
                                         const AliasSet &SetX,
                                         const AliasSet &SetY) {
  if (X.sameBase(Y))
    return testAffinePair(X, Y);
  if (SetX.disjointFrom(SetY))
    return make(DepTestKind::AliasClass, DepOutcome::Independent);
  return make(DepTestKind::MayFallback, DepOutcome::May);
}

std::vector<FuncMemEffects> analysis::computeMemEffects(const ir::Module &M) {
  std::uint32_t N = static_cast<std::uint32_t>(M.Functions.size());
  std::vector<FuncMemEffects> Effects(N);
  std::vector<std::vector<std::uint32_t>> Calls(N);
  for (std::uint32_t F = 0; F < N; ++F) {
    for (const ir::BasicBlock &BB : M.Functions[F].Blocks) {
      for (const ir::Instruction &I : BB.Instructions) {
        switch (I.Op) {
        case ir::Opcode::Load:
          Effects[F].ReadsHeap = true;
          break;
        case ir::Opcode::Store:
          Effects[F].WritesHeap = true;
          break;
        case ir::Opcode::Alloc:
          Effects[F].Allocates = true;
          break;
        case ir::Opcode::Call: {
          std::uint32_t Callee = static_cast<std::uint32_t>(I.Imm);
          if (Callee < N) {
            Calls[F].push_back(Callee);
          } else {
            Effects[F].ReadsHeap = Effects[F].WritesHeap =
                Effects[F].Allocates = true;
          }
          break;
        }
        default:
          break;
        }
      }
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::uint32_t F = 0; F < N; ++F) {
      for (std::uint32_t Callee : Calls[F]) {
        FuncMemEffects Merged = Effects[F];
        Merged.ReadsHeap |= Effects[Callee].ReadsHeap;
        Merged.WritesHeap |= Effects[Callee].WritesHeap;
        Merged.Allocates |= Effects[Callee].Allocates;
        if (Merged.ReadsHeap != Effects[F].ReadsHeap ||
            Merged.WritesHeap != Effects[F].WritesHeap ||
            Merged.Allocates != Effects[F].Allocates) {
          Effects[F] = Merged;
          Changed = true;
        }
      }
    }
  }
  return Effects;
}
