//===- analysis/Candidates.h - Candidate STL selection ---------------------==//
//
// Bundles the per-function CFG analyses and produces the module-wide list
// of potential speculative thread loops (STLs). Loops are chosen
// optimistically (Section 4.1): only loops whose carried scalar pattern
// obviously serializes execution ("end-of-loop store and start-of-loop
// load") are rejected; inductors and reductions are ignored because the
// compiler eliminates them.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_CANDIDATES_H
#define JRPM_ANALYSIS_CANDIDATES_H

#include "analysis/Dominators.h"
#include "analysis/InductionInfo.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemDep.h"
#include "analysis/StaticOracle.h"
#include "ir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace jrpm {
namespace analysis {

/// All CFG analyses of one function.
struct FunctionAnalysis {
  explicit FunctionAnalysis(const ir::Function &F);

  DominatorTree DT;
  LoopInfo LI;
  Liveness LV;
  /// Scalar classification per loop (parallel to LI.loops()).
  std::vector<InductionInfo> LoopScalars;
  /// Memory dependence summary per loop (parallel to LI.loops()).
  std::unique_ptr<MemDepAnalysis> MemDep;
};

/// Why a loop was removed from the candidate list. The paper's optimistic
/// policy (Section 4.1) covers the first four kinds; SerialMemoryRecurrence
/// is the flag-gated static pre-filter on top of it, and the two Affine
/// kinds are the affine oracle's provably-serial verdicts (StaticOracle.h)
/// split by the dependence test that fired.
enum class RejectKind : std::uint8_t {
  None,
  ReturnsFromFunction,
  AllocatesHeap,
  CallsAllocator,
  SerialCarriedScalar,
  SerialMemoryRecurrence,
  AffineSerialZiv,
  AffineSerialSiv,
};

/// Returns a short stable name for \p Kind (for tables and logs).
const char *rejectKindName(RejectKind Kind);

/// Inverse of rejectKindName. Returns false when \p Name matches no kind.
bool rejectKindFromName(const std::string &Name, RejectKind &Out);

/// Every RejectKind value, in declaration order (tables, round-trip tests).
inline constexpr RejectKind AllRejectKinds[] = {
    RejectKind::None,
    RejectKind::ReturnsFromFunction,
    RejectKind::AllocatesHeap,
    RejectKind::CallsAllocator,
    RejectKind::SerialCarriedScalar,
    RejectKind::SerialMemoryRecurrence,
    RejectKind::AffineSerialZiv,
    RejectKind::AffineSerialSiv,
};

/// Tuning knobs for candidate screening.
struct AnalysisOptions {
  /// Enables the static dependence pre-filter: loops whose memory traffic
  /// provably serialises every iteration pair are rejected before they are
  /// ever annotated, saving their share of the Figure-6 profiling
  /// slowdown. Off by default so the paper-figure benches keep measuring
  /// the paper's optimistic policy.
  bool StaticPrefilter = false;
  /// A serial memory recurrence is rejected only when its worst-case
  /// store-to-reload window is at most this many cycles — i.e. the
  /// cross-iteration arc can never beat the Hydra forwarding delay
  /// (sim::HydraConfig::StoreLoadCommCycles, default 10).
  std::uint32_t SerialArcBudget = 10;
  /// Enables the affine speculation oracle (StaticOracle.h): runs the
  /// affine dependence tests over every loop, records per-loop verdicts,
  /// and rejects provably-serial loops under the AffineSerial* kinds. A
  /// strict superset of the StaticPrefilter rejections: the shape-matched
  /// serial-recurrence rule runs as well.
  bool AffineOracle = false;
};

/// One potential STL (or a rejected loop, kept for reporting).
struct CandidateStl {
  std::uint32_t FuncIndex = 0;
  std::uint32_t LoopIdx = 0; // index into the function's LoopInfo
  std::uint32_t LoopId = 0;  // module-global id, used by annotations
  bool Rejected = false;
  RejectKind Kind = RejectKind::None;
  std::string RejectReason;
  /// Carried named locals needing `lwl`/`swl` annotations, in slot order.
  std::vector<std::uint16_t> AnnotatedLocals;
};

/// Module-wide analysis results and candidate list.
class ModuleAnalysis {
public:
  explicit ModuleAnalysis(const ir::Module &M,
                          const AnalysisOptions &Opts = {});

  const FunctionAnalysis &func(std::uint32_t F) const { return *Funcs[F]; }
  const std::vector<CandidateStl> &candidates() const { return Candidates; }

  /// Per-function transitive memory-effect summaries (call screening).
  const std::vector<FuncMemEffects> &memEffects() const { return Effects; }

  /// The affine oracle's verdict for loop \p LoopId, or null when the
  /// oracle was not enabled.
  const LoopOracleResult *oracleResult(std::uint32_t LoopId) const {
    return OracleResults.empty() ? nullptr : &OracleResults[LoopId];
  }

  const CandidateStl &candidate(std::uint32_t LoopId) const {
    return Candidates[LoopId];
  }

  const Loop &loopOf(const CandidateStl &C) const {
    return Funcs[C.FuncIndex]->LI.loops()[C.LoopIdx];
  }

  const InductionInfo &scalarsOf(const CandidateStl &C) const {
    return Funcs[C.FuncIndex]->LoopScalars[C.LoopIdx];
  }

  /// Total number of natural loops in the module (Table 6 column c).
  std::uint32_t loopCount() const;

  /// Maximum static loop nesting depth (Table 6 column d is the dynamic
  /// depth; this static bound is reported alongside it).
  std::uint32_t maxStaticLoopDepth() const;

private:
  const ir::Module &M;
  std::vector<std::unique_ptr<FunctionAnalysis>> Funcs;
  std::vector<CandidateStl> Candidates;
  std::vector<FuncMemEffects> Effects;
  /// Parallel to Candidates when the oracle ran; empty otherwise.
  std::vector<LoopOracleResult> OracleResults;
};

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_CANDIDATES_H
