//===- analysis/LoopInfo.h - Natural loop discovery ------------------------==//
//
// Finds all natural loops of a function (Section 4.1: "the compiler chooses
// potential STLs by examining a method's control-flow graph to identify all
// natural loops") and arranges them into a nesting forest.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_ANALYSIS_LOOPINFO_H
#define JRPM_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace analysis {

/// One natural loop. Loops sharing a header are merged.
struct Loop {
  std::uint32_t Header = 0;
  /// Sorted block indices belonging to the loop (header included).
  std::vector<std::uint32_t> Blocks;
  /// Source blocks of backedges into the header.
  std::vector<std::uint32_t> Latches;
  /// Blocks outside the loop reached by an edge leaving the loop.
  std::vector<std::uint32_t> ExitTargets;
  /// Index of the enclosing loop in the forest, or -1 for a top-level loop.
  int Parent = -1;
  std::vector<std::uint32_t> Children;
  /// Nesting depth: 1 for top-level loops.
  std::uint32_t Depth = 1;

  bool contains(std::uint32_t Block) const;
};

/// The loop forest of one function.
class LoopInfo {
public:
  LoopInfo(const ir::Function &F, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Returns the innermost loop containing \p Block, or -1.
  int innermostLoop(std::uint32_t Block) const {
    return BlockToLoop[Block];
  }

  /// Maximum nesting depth across the function (0 when there are no loops).
  std::uint32_t maxDepth() const;

  /// Number of loop levels between \p LoopIdx and its innermost descendant
  /// (1 when the loop has no children), i.e. the paper's "loop height".
  std::uint32_t heightOf(std::uint32_t LoopIdx) const;

private:
  std::vector<Loop> Loops;
  std::vector<int> BlockToLoop;
};

} // namespace analysis
} // namespace jrpm

#endif // JRPM_ANALYSIS_LOOPINFO_H
