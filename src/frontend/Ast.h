//===- frontend/Ast.h - Structured program AST -----------------------------==//
//
// Workloads are written against this small structured AST (the stand-in for
// Java source). Expressions and statements are immutable trees with cheap
// value-semantic handles; Lower.h translates them into the register IR.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_FRONTEND_AST_H
#define JRPM_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jrpm {
namespace front {

enum class BinOpKind {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  FAdd,
  FSub,
  FMul,
  FDiv,
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  FCmpEQ,
  FCmpLT,
  FCmpLE,
};

enum class UnOpKind {
  FNeg,
  FSqrt,
  IToF,
  FToI,
  Not, // logical not of a 0/1 value
};

enum class ExKind {
  ConstInt,
  ConstFloat,
  Local,
  Binary,
  Unary,
  Load,
  Call,
  Alloc,
};

struct ExprNode;

/// Cheap value-semantic expression handle.
class Ex {
public:
  Ex() = default;
  explicit Ex(std::shared_ptr<const ExprNode> N) : Node(std::move(N)) {}
  const ExprNode &node() const { return *Node; }
  bool valid() const { return Node != nullptr; }

private:
  std::shared_ptr<const ExprNode> Node;
};

struct ExprNode {
  ExKind Kind;
  // ConstInt / ConstFloat
  std::int64_t IntValue = 0;
  double FloatValue = 0;
  // Local / Call
  std::string Name;
  // Binary / Unary
  BinOpKind BinOp = BinOpKind::Add;
  UnOpKind UnOp = UnOpKind::Not;
  // Operands: Binary uses [0]=lhs [1]=rhs; Unary/Alloc use [0]; Load uses
  // [0]=base, optional [1]=index; Call uses all as arguments.
  std::vector<Ex> Operands;
  // Load immediate word offset.
  std::int64_t Offset = 0;
};

enum class StKind {
  Seq,
  Assign,
  Store,
  If,
  While,
  DoWhile,
  For,
  Ret,
  Break,
  Continue,
  ExprStmt,
};

struct StmtNode;

/// Cheap value-semantic statement handle.
class St {
public:
  St() = default;
  explicit St(std::shared_ptr<const StmtNode> N) : Node(std::move(N)) {}
  const StmtNode &node() const { return *Node; }
  bool valid() const { return Node != nullptr; }

private:
  std::shared_ptr<const StmtNode> Node;
};

struct StmtNode {
  StKind Kind;
  std::string Name;        // Assign / For induction variable
  Ex Value;                // Assign value, Store value, Ret value, ExprStmt
  Ex Cond;                 // If / While / DoWhile / For condition
  Ex Base, Index;          // Store address parts
  std::int64_t Offset = 0; // Store immediate word offset
  Ex Init;                 // For initial value
  std::int64_t Step = 1;   // For induction step
  std::vector<St> Body;    // Seq body, loop body, If then-branch
  std::vector<St> Else;    // If else-branch
};

// --- Expression factories -------------------------------------------------

Ex c(std::int64_t Value);
Ex cf(double Value);
Ex v(const std::string &Name);
Ex bin(BinOpKind Op, Ex L, Ex R);
Ex un(UnOpKind Op, Ex E);
/// heap[base + index + offset]; pass an invalid Ex for no index.
Ex ld(Ex Base, Ex Index = Ex(), std::int64_t Offset = 0);
Ex call(const std::string &Callee, std::vector<Ex> Args);
Ex allocWords(Ex Size);

inline Ex add(Ex L, Ex R) { return bin(BinOpKind::Add, L, R); }
inline Ex sub(Ex L, Ex R) { return bin(BinOpKind::Sub, L, R); }
inline Ex mul(Ex L, Ex R) { return bin(BinOpKind::Mul, L, R); }
inline Ex sdiv(Ex L, Ex R) { return bin(BinOpKind::Div, L, R); }
inline Ex srem(Ex L, Ex R) { return bin(BinOpKind::Rem, L, R); }
inline Ex band(Ex L, Ex R) { return bin(BinOpKind::And, L, R); }
inline Ex bor(Ex L, Ex R) { return bin(BinOpKind::Or, L, R); }
inline Ex bxor(Ex L, Ex R) { return bin(BinOpKind::Xor, L, R); }
inline Ex shl(Ex L, Ex R) { return bin(BinOpKind::Shl, L, R); }
inline Ex shr(Ex L, Ex R) { return bin(BinOpKind::Shr, L, R); }
inline Ex fadd(Ex L, Ex R) { return bin(BinOpKind::FAdd, L, R); }
inline Ex fsub(Ex L, Ex R) { return bin(BinOpKind::FSub, L, R); }
inline Ex fmul(Ex L, Ex R) { return bin(BinOpKind::FMul, L, R); }
inline Ex fdiv(Ex L, Ex R) { return bin(BinOpKind::FDiv, L, R); }
inline Ex eq(Ex L, Ex R) { return bin(BinOpKind::CmpEQ, L, R); }
inline Ex ne(Ex L, Ex R) { return bin(BinOpKind::CmpNE, L, R); }
inline Ex lt(Ex L, Ex R) { return bin(BinOpKind::CmpLT, L, R); }
inline Ex le(Ex L, Ex R) { return bin(BinOpKind::CmpLE, L, R); }
inline Ex gt(Ex L, Ex R) { return bin(BinOpKind::CmpGT, L, R); }
inline Ex ge(Ex L, Ex R) { return bin(BinOpKind::CmpGE, L, R); }
inline Ex feq(Ex L, Ex R) { return bin(BinOpKind::FCmpEQ, L, R); }
inline Ex flt(Ex L, Ex R) { return bin(BinOpKind::FCmpLT, L, R); }
inline Ex fle(Ex L, Ex R) { return bin(BinOpKind::FCmpLE, L, R); }
inline Ex fneg(Ex E) { return un(UnOpKind::FNeg, E); }
inline Ex fsqrt(Ex E) { return un(UnOpKind::FSqrt, E); }
inline Ex itof(Ex E) { return un(UnOpKind::IToF, E); }
inline Ex ftoi(Ex E) { return un(UnOpKind::FToI, E); }
inline Ex lnot(Ex E) { return un(UnOpKind::Not, E); }

// --- Statement factories ---------------------------------------------------

St seq(std::vector<St> Body);
St assign(const std::string &Name, Ex Value);
/// heap[base + index + offset] = value; pass an invalid Ex for no index.
St store(Ex Base, Ex Index, std::int64_t Offset, Ex Value);
inline St store(Ex Base, Ex Index, Ex Value) {
  return store(Base, Index, 0, Value);
}
St iff(Ex Cond, St Then);
St iffElse(Ex Cond, St Then, St Else);
St whileLoop(Ex Cond, St Body);
St doWhile(Ex Cond, St Body);
/// for (Name = Init; Cond; Name += Step) Body — Cond sees the updated Name.
St forLoop(const std::string &Name, Ex Init, Ex Cond, std::int64_t Step,
           St Body);
St ret(Ex Value = Ex());
St brk();
St cont();
St exprStmt(Ex Value);

/// A function definition: name, parameter names, body.
struct FuncDef {
  std::string Name;
  std::vector<std::string> Params;
  St Body;
};

/// A whole source program; the entry function must be named "main".
struct ProgramDef {
  std::vector<FuncDef> Functions;
};

} // namespace front
} // namespace jrpm

#endif // JRPM_FRONTEND_AST_H
