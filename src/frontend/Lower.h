//===- frontend/Lower.h - AST to IR lowering -------------------------------==//

#ifndef JRPM_FRONTEND_LOWER_H
#define JRPM_FRONTEND_LOWER_H

#include "frontend/Ast.h"
#include "ir/IR.h"

namespace jrpm {
namespace front {

/// Lowers \p Program into a finalized, verified IR module. Aborts with a
/// diagnostic on malformed input (unknown local/function, break outside a
/// loop); workload definitions are compiled-in and must be well formed.
ir::Module lowerProgram(const ProgramDef &Program);

} // namespace front
} // namespace jrpm

#endif // JRPM_FRONTEND_LOWER_H
