//===- frontend/Lower.cpp -------------------------------------------------==//

#include "frontend/Lower.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Compiler.h"

#include <map>

using namespace jrpm;
using namespace jrpm::front;

namespace {

ir::Opcode binOpToOpcode(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return ir::Opcode::Add;
  case BinOpKind::Sub:
    return ir::Opcode::Sub;
  case BinOpKind::Mul:
    return ir::Opcode::Mul;
  case BinOpKind::Div:
    return ir::Opcode::Div;
  case BinOpKind::Rem:
    return ir::Opcode::Rem;
  case BinOpKind::And:
    return ir::Opcode::And;
  case BinOpKind::Or:
    return ir::Opcode::Or;
  case BinOpKind::Xor:
    return ir::Opcode::Xor;
  case BinOpKind::Shl:
    return ir::Opcode::Shl;
  case BinOpKind::Shr:
    return ir::Opcode::Shr;
  case BinOpKind::FAdd:
    return ir::Opcode::FAdd;
  case BinOpKind::FSub:
    return ir::Opcode::FSub;
  case BinOpKind::FMul:
    return ir::Opcode::FMul;
  case BinOpKind::FDiv:
    return ir::Opcode::FDiv;
  case BinOpKind::CmpEQ:
    return ir::Opcode::CmpEQ;
  case BinOpKind::CmpNE:
    return ir::Opcode::CmpNE;
  case BinOpKind::CmpLT:
    return ir::Opcode::CmpLT;
  case BinOpKind::CmpLE:
    return ir::Opcode::CmpLE;
  case BinOpKind::CmpGT:
    return ir::Opcode::CmpGT;
  case BinOpKind::CmpGE:
    return ir::Opcode::CmpGE;
  case BinOpKind::FCmpEQ:
    return ir::Opcode::FCmpEQ;
  case BinOpKind::FCmpLT:
    return ir::Opcode::FCmpLT;
  case BinOpKind::FCmpLE:
    return ir::Opcode::FCmpLE;
  }
  JRPM_UNREACHABLE("unknown binary op");
}

class FunctionLowering {
public:
  FunctionLowering(ir::IRBuilder &Builder,
                   const std::map<std::string, std::uint32_t> &FuncIndex)
      : B(Builder), FuncIndex(FuncIndex) {}

  void run(const FuncDef &Def) {
    for (std::uint32_t P = 0; P < Def.Params.size(); ++P)
      defineLocal(Def.Params[P], static_cast<std::uint16_t>(P));
    lowerStmt(Def.Body);
    // Fall-through return for functions whose body does not end in ret.
    if (!B.function().Blocks[B.currentBlock()].hasTerminator())
      B.emitRet();
  }

private:
  struct LoopContext {
    std::uint32_t ContinueBlock;
    std::uint32_t BreakBlock;
  };

  void defineLocal(const std::string &Name, std::uint16_t Reg) {
    Locals[Name] = Reg;
    B.function().NamedLocals.emplace_back(Name, Reg);
  }

  std::uint16_t localReg(const std::string &Name, bool DefineIfMissing) {
    auto It = Locals.find(Name);
    if (It != Locals.end())
      return It->second;
    if (!DefineIfMissing) {
      std::fprintf(stderr, "lowering %s: unknown local '%s'\n",
                   B.function().Name.c_str(), Name.c_str());
      std::abort();
    }
    std::uint16_t Reg = B.newReg();
    defineLocal(Name, Reg);
    return Reg;
  }

  std::uint16_t lowerExpr(const Ex &E) {
    const ExprNode &N = E.node();
    // Locals read in place; everything else goes through a temporary.
    if (N.Kind == ExKind::Local)
      return localReg(N.Name, /*DefineIfMissing=*/false);
    std::uint16_t Dst = B.newReg();
    lowerExprInto(E, Dst);
    return Dst;
  }

  void lowerExprInto(const Ex &E, std::uint16_t Dst) {
    const ExprNode &N = E.node();
    switch (N.Kind) {
    case ExKind::ConstInt:
      B.emitConstIInto(Dst, N.IntValue);
      return;
    case ExKind::ConstFloat: {
      ir::Instruction I;
      I.Op = ir::Opcode::ConstF;
      I.Dst = Dst;
      I.Imm = static_cast<std::int64_t>(
          std::bit_cast<std::uint64_t>(N.FloatValue));
      B.emit(I);
      return;
    }
    case ExKind::Local:
      B.emitMov(Dst, localReg(N.Name, false));
      return;
    case ExKind::Binary: {
      // `x + smallConst` lowers to the iinc-style immediate form so that
      // induction analysis sees `AddImm r, r, c` patterns.
      const ExprNode &L = N.Operands[0].node();
      const ExprNode &R = N.Operands[1].node();
      if (N.BinOp == BinOpKind::Add && R.Kind == ExKind::ConstInt) {
        std::uint16_t A = lowerExpr(N.Operands[0]);
        B.emitAddImmInto(Dst, A, R.IntValue);
        return;
      }
      if (N.BinOp == BinOpKind::Sub && R.Kind == ExKind::ConstInt) {
        std::uint16_t A = lowerExpr(N.Operands[0]);
        B.emitAddImmInto(Dst, A, -R.IntValue);
        return;
      }
      if (N.BinOp == BinOpKind::Add && L.Kind == ExKind::ConstInt) {
        std::uint16_t A = lowerExpr(N.Operands[1]);
        B.emitAddImmInto(Dst, A, L.IntValue);
        return;
      }
      std::uint16_t A = lowerExpr(N.Operands[0]);
      std::uint16_t Rhs = lowerExpr(N.Operands[1]);
      B.emitBinaryInto(binOpToOpcode(N.BinOp), Dst, A, Rhs);
      return;
    }
    case ExKind::Unary: {
      if (N.UnOp == UnOpKind::Not) {
        std::uint16_t A = lowerExpr(N.Operands[0]);
        std::uint16_t Zero = B.emitConstI(0);
        B.emitBinaryInto(ir::Opcode::CmpEQ, Dst, A, Zero);
        return;
      }
      ir::Opcode Op = ir::Opcode::Nop;
      switch (N.UnOp) {
      case UnOpKind::FNeg:
        Op = ir::Opcode::FNeg;
        break;
      case UnOpKind::FSqrt:
        Op = ir::Opcode::FSqrt;
        break;
      case UnOpKind::IToF:
        Op = ir::Opcode::IToF;
        break;
      case UnOpKind::FToI:
        Op = ir::Opcode::FToI;
        break;
      case UnOpKind::Not:
        JRPM_UNREACHABLE("handled above");
      }
      ir::Instruction I;
      I.Op = Op;
      I.Dst = Dst;
      I.A = lowerExpr(N.Operands[0]);
      B.emit(I);
      return;
    }
    case ExKind::Load: {
      std::uint16_t Base = lowerExpr(N.Operands[0]);
      std::uint16_t Index =
          N.Operands.size() > 1 ? lowerExpr(N.Operands[1]) : ir::NoReg;
      B.emitLoadInto(Dst, Base, Index, N.Offset);
      return;
    }
    case ExKind::Call: {
      auto It = FuncIndex.find(N.Name);
      if (It == FuncIndex.end()) {
        std::fprintf(stderr, "lowering %s: unknown function '%s'\n",
                     B.function().Name.c_str(), N.Name.c_str());
        std::abort();
      }
      std::vector<std::uint16_t> Args;
      Args.reserve(N.Operands.size());
      for (const Ex &Arg : N.Operands)
        Args.push_back(lowerExpr(Arg));
      // emitCall wants a fresh Dst; emit then move.
      std::uint16_t Result = B.emitCall(It->second, Args);
      B.emitMov(Dst, Result);
      return;
    }
    case ExKind::Alloc: {
      std::uint16_t Size = lowerExpr(N.Operands[0]);
      ir::Instruction I;
      I.Op = ir::Opcode::Alloc;
      I.Dst = Dst;
      I.A = Size;
      B.emit(I);
      return;
    }
    }
    JRPM_UNREACHABLE("unknown expression kind");
  }

  void lowerStmtList(const std::vector<St> &List) {
    for (const St &S : List)
      lowerStmt(S);
  }

  /// Lowers \p S into the current block; may create blocks and leaves the
  /// builder positioned at the fall-through block.
  void lowerStmt(const St &S) {
    const StmtNode &N = S.node();
    switch (N.Kind) {
    case StKind::Seq:
      lowerStmtList(N.Body);
      return;
    case StKind::Assign: {
      // Pre-registering the destination keeps `i = i + 1` a single AddImm
      // on one register, which induction analysis depends on.
      std::uint16_t Dst = localReg(N.Name, /*DefineIfMissing=*/true);
      lowerExprInto(N.Value, Dst);
      return;
    }
    case StKind::Store: {
      std::uint16_t Value = lowerExpr(N.Value);
      std::uint16_t Base = lowerExpr(N.Base);
      std::uint16_t Index = N.Index.valid() ? lowerExpr(N.Index) : ir::NoReg;
      B.emitStore(Value, Base, Index, N.Offset);
      return;
    }
    case StKind::If: {
      std::uint16_t Cond = lowerExpr(N.Cond);
      std::uint32_t ThenBlock = B.newBlock();
      std::uint32_t JoinBlock = B.newBlock();
      std::uint32_t ElseBlock = N.Else.empty() ? JoinBlock : B.newBlock();
      B.emitCondBr(Cond, ThenBlock, ElseBlock);
      B.setBlock(ThenBlock);
      lowerStmtList(N.Body);
      if (!B.function().Blocks[B.currentBlock()].hasTerminator())
        B.emitBr(JoinBlock);
      if (!N.Else.empty()) {
        B.setBlock(ElseBlock);
        lowerStmtList(N.Else);
        if (!B.function().Blocks[B.currentBlock()].hasTerminator())
          B.emitBr(JoinBlock);
      }
      B.setBlock(JoinBlock);
      return;
    }
    case StKind::While: {
      std::uint32_t Header = B.newBlock();
      std::uint32_t Body = B.newBlock();
      std::uint32_t Exit = B.newBlock();
      B.emitBr(Header);
      B.setBlock(Header);
      std::uint16_t Cond = lowerExpr(N.Cond);
      B.emitCondBr(Cond, Body, Exit);
      Loops.push_back({Header, Exit});
      B.setBlock(Body);
      lowerStmtList(N.Body);
      if (!B.function().Blocks[B.currentBlock()].hasTerminator())
        B.emitBr(Header);
      Loops.pop_back();
      B.setBlock(Exit);
      return;
    }
    case StKind::DoWhile: {
      std::uint32_t Body = B.newBlock();
      std::uint32_t Latch = B.newBlock();
      std::uint32_t Exit = B.newBlock();
      B.emitBr(Body);
      Loops.push_back({Latch, Exit});
      B.setBlock(Body);
      lowerStmtList(N.Body);
      if (!B.function().Blocks[B.currentBlock()].hasTerminator())
        B.emitBr(Latch);
      Loops.pop_back();
      B.setBlock(Latch);
      std::uint16_t Cond = lowerExpr(N.Cond);
      B.emitCondBr(Cond, Body, Exit);
      B.setBlock(Exit);
      return;
    }
    case StKind::For: {
      std::uint16_t IndVar = localReg(N.Name, /*DefineIfMissing=*/true);
      lowerExprInto(N.Init, IndVar);
      std::uint32_t Header = B.newBlock();
      std::uint32_t Body = B.newBlock();
      std::uint32_t Step = B.newBlock();
      std::uint32_t Exit = B.newBlock();
      B.emitBr(Header);
      B.setBlock(Header);
      std::uint16_t Cond = lowerExpr(N.Cond);
      B.emitCondBr(Cond, Body, Exit);
      Loops.push_back({Step, Exit});
      B.setBlock(Body);
      lowerStmtList(N.Body);
      if (!B.function().Blocks[B.currentBlock()].hasTerminator())
        B.emitBr(Step);
      Loops.pop_back();
      B.setBlock(Step);
      B.emitAddImmInto(IndVar, IndVar, N.Step);
      B.emitBr(Header);
      B.setBlock(Exit);
      return;
    }
    case StKind::Ret: {
      std::uint16_t Value = N.Value.valid() ? lowerExpr(N.Value) : ir::NoReg;
      B.emitRet(Value);
      // Statements after a ret in the same Seq would be unreachable; give
      // them a fresh block so the IR stays well formed.
      B.setBlock(B.newBlock());
      return;
    }
    case StKind::Break: {
      if (Loops.empty())
        JRPM_FATAL("break outside a loop");
      B.emitBr(Loops.back().BreakBlock);
      B.setBlock(B.newBlock());
      return;
    }
    case StKind::Continue: {
      if (Loops.empty())
        JRPM_FATAL("continue outside a loop");
      B.emitBr(Loops.back().ContinueBlock);
      B.setBlock(B.newBlock());
      return;
    }
    case StKind::ExprStmt:
      (void)lowerExpr(N.Value);
      return;
    }
    JRPM_UNREACHABLE("unknown statement kind");
  }

  ir::IRBuilder &B;
  const std::map<std::string, std::uint32_t> &FuncIndex;
  std::map<std::string, std::uint16_t> Locals;
  std::vector<LoopContext> Loops;
};

} // namespace

ir::Module front::lowerProgram(const ProgramDef &Program) {
  ir::Module M;
  ir::IRBuilder B(M);

  std::map<std::string, std::uint32_t> FuncIndex;
  for (const FuncDef &Def : Program.Functions) {
    std::uint32_t Index = B.createFunction(
        Def.Name, static_cast<std::uint32_t>(Def.Params.size()));
    FuncIndex[Def.Name] = Index;
  }

  for (std::uint32_t F = 0; F < Program.Functions.size(); ++F) {
    B.setFunction(F);
    FunctionLowering Lowering(B, FuncIndex);
    Lowering.run(Program.Functions[F]);
  }

  int Entry = M.findFunction("main");
  if (Entry < 0)
    JRPM_FATAL("program has no 'main' function");
  M.EntryFunction = static_cast<std::uint32_t>(Entry);
  M.finalize();

  std::vector<std::string> Errors = ir::verifyModule(M);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "verifier: %s\n", E.c_str());
    JRPM_FATAL("lowered module failed verification");
  }
  return M;
}
