//===- frontend/Ast.cpp ---------------------------------------------------==//

#include "frontend/Ast.h"

using namespace jrpm;
using namespace jrpm::front;

static Ex makeEx(ExprNode N) {
  return Ex(std::make_shared<const ExprNode>(std::move(N)));
}

static St makeSt(StmtNode N) {
  return St(std::make_shared<const StmtNode>(std::move(N)));
}

Ex front::c(std::int64_t Value) {
  ExprNode N;
  N.Kind = ExKind::ConstInt;
  N.IntValue = Value;
  return makeEx(std::move(N));
}

Ex front::cf(double Value) {
  ExprNode N;
  N.Kind = ExKind::ConstFloat;
  N.FloatValue = Value;
  return makeEx(std::move(N));
}

Ex front::v(const std::string &Name) {
  ExprNode N;
  N.Kind = ExKind::Local;
  N.Name = Name;
  return makeEx(std::move(N));
}

Ex front::bin(BinOpKind Op, Ex L, Ex R) {
  ExprNode N;
  N.Kind = ExKind::Binary;
  N.BinOp = Op;
  N.Operands = {std::move(L), std::move(R)};
  return makeEx(std::move(N));
}

Ex front::un(UnOpKind Op, Ex E) {
  ExprNode N;
  N.Kind = ExKind::Unary;
  N.UnOp = Op;
  N.Operands = {std::move(E)};
  return makeEx(std::move(N));
}

Ex front::ld(Ex Base, Ex Index, std::int64_t Offset) {
  ExprNode N;
  N.Kind = ExKind::Load;
  N.Operands = {std::move(Base)};
  if (Index.valid())
    N.Operands.push_back(std::move(Index));
  N.Offset = Offset;
  return makeEx(std::move(N));
}

Ex front::call(const std::string &Callee, std::vector<Ex> Args) {
  ExprNode N;
  N.Kind = ExKind::Call;
  N.Name = Callee;
  N.Operands = std::move(Args);
  return makeEx(std::move(N));
}

Ex front::allocWords(Ex Size) {
  ExprNode N;
  N.Kind = ExKind::Alloc;
  N.Operands = {std::move(Size)};
  return makeEx(std::move(N));
}

St front::seq(std::vector<St> Body) {
  StmtNode N;
  N.Kind = StKind::Seq;
  N.Body = std::move(Body);
  return makeSt(std::move(N));
}

St front::assign(const std::string &Name, Ex Value) {
  StmtNode N;
  N.Kind = StKind::Assign;
  N.Name = Name;
  N.Value = std::move(Value);
  return makeSt(std::move(N));
}

St front::store(Ex Base, Ex Index, std::int64_t Offset, Ex Value) {
  StmtNode N;
  N.Kind = StKind::Store;
  N.Base = std::move(Base);
  N.Index = std::move(Index);
  N.Offset = Offset;
  N.Value = std::move(Value);
  return makeSt(std::move(N));
}

St front::iff(Ex Cond, St Then) {
  StmtNode N;
  N.Kind = StKind::If;
  N.Cond = std::move(Cond);
  N.Body = {std::move(Then)};
  return makeSt(std::move(N));
}

St front::iffElse(Ex Cond, St Then, St Else) {
  StmtNode N;
  N.Kind = StKind::If;
  N.Cond = std::move(Cond);
  N.Body = {std::move(Then)};
  N.Else = {std::move(Else)};
  return makeSt(std::move(N));
}

St front::whileLoop(Ex Cond, St Body) {
  StmtNode N;
  N.Kind = StKind::While;
  N.Cond = std::move(Cond);
  N.Body = {std::move(Body)};
  return makeSt(std::move(N));
}

St front::doWhile(Ex Cond, St Body) {
  StmtNode N;
  N.Kind = StKind::DoWhile;
  N.Cond = std::move(Cond);
  N.Body = {std::move(Body)};
  return makeSt(std::move(N));
}

St front::forLoop(const std::string &Name, Ex Init, Ex Cond, std::int64_t Step,
                  St Body) {
  StmtNode N;
  N.Kind = StKind::For;
  N.Name = Name;
  N.Init = std::move(Init);
  N.Cond = std::move(Cond);
  N.Step = Step;
  N.Body = {std::move(Body)};
  return makeSt(std::move(N));
}

St front::ret(Ex Value) {
  StmtNode N;
  N.Kind = StKind::Ret;
  N.Value = std::move(Value);
  return makeSt(std::move(N));
}

St front::brk() {
  StmtNode N;
  N.Kind = StKind::Break;
  return makeSt(std::move(N));
}

St front::cont() {
  StmtNode N;
  N.Kind = StKind::Continue;
  return makeSt(std::move(N));
}

St front::exprStmt(Ex Value) {
  StmtNode N;
  N.Kind = StKind::ExprStmt;
  N.Value = std::move(Value);
  return makeSt(std::move(N));
}
