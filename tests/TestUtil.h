//===- tests/TestUtil.h - Shared helpers for the test suites ---------------==//

#ifndef JRPM_TESTS_TESTUTIL_H
#define JRPM_TESTS_TESTUTIL_H

#include "frontend/Ast.h"
#include "frontend/Lower.h"
#include "interp/Machine.h"
#include "sim/Config.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace testutil {

/// Lowers a single-function program named "main" from \p Body.
inline ir::Module makeMain(front::St Body) {
  front::ProgramDef P;
  front::FuncDef Main;
  Main.Name = "main";
  Main.Body = std::move(Body);
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

/// Runs \p M sequentially and returns the result.
inline interp::RunResult runModule(const ir::Module &M,
                                   const sim::HydraConfig &Cfg = {}) {
  interp::Machine Machine(M, Cfg);
  return Machine.run();
}

/// Convenience: lower and run, returning main's value.
inline std::uint64_t evalMain(front::St Body) {
  ir::Module M = makeMain(std::move(Body));
  return runModule(M).ReturnValue;
}

} // namespace testutil
} // namespace jrpm

#endif // JRPM_TESTS_TESTUTIL_H
