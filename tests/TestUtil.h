//===- tests/TestUtil.h - Shared helpers for the test suites ---------------==//

#ifndef JRPM_TESTS_TESTUTIL_H
#define JRPM_TESTS_TESTUTIL_H

#include "frontend/Ast.h"
#include "frontend/Lower.h"
#include "interp/Machine.h"
#include "sim/Config.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace jrpm {
namespace testutil {

/// RAII temporary directory (mkdtemp under TMPDIR or /tmp); recursively
/// removed on destruction. Tests build scratch paths with file() instead of
/// hand-rolling pid-stamped /tmp names, so a crashed run can't leave
/// colliding litter behind for the next one.
class ScopedTempDir {
public:
  explicit ScopedTempDir(const std::string &Tag = "jrpm-test") {
    const char *Base = std::getenv("TMPDIR");
    std::string Template = std::string(Base && *Base ? Base : "/tmp") + "/" +
                           Tag + "-XXXXXX";
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    if (char *D = mkdtemp(Buf.data()))
      P = D;
  }
  ~ScopedTempDir() {
    if (!P.empty()) {
      std::error_code Ec; // best-effort cleanup; never throw in a dtor
      std::filesystem::remove_all(P, Ec);
    }
  }
  ScopedTempDir(const ScopedTempDir &) = delete;
  ScopedTempDir &operator=(const ScopedTempDir &) = delete;

  bool valid() const { return !P.empty(); }
  const std::string &path() const { return P; }
  std::string file(const std::string &Name) const { return P + "/" + Name; }

private:
  std::string P;
};

/// Lowers a single-function program named "main" from \p Body.
inline ir::Module makeMain(front::St Body) {
  front::ProgramDef P;
  front::FuncDef Main;
  Main.Name = "main";
  Main.Body = std::move(Body);
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

/// Runs \p M sequentially and returns the result.
inline interp::RunResult runModule(const ir::Module &M,
                                   const sim::HydraConfig &Cfg = {}) {
  interp::Machine Machine(M, Cfg);
  return Machine.run();
}

/// Convenience: lower and run, returning main's value.
inline std::uint64_t evalMain(front::St Body) {
  ir::Module M = makeMain(std::move(Body));
  return runModule(M).ReturnValue;
}

} // namespace testutil
} // namespace jrpm

#endif // JRPM_TESTS_TESTUTIL_H
