//===- tests/serve_test.cpp - jrpm-serve daemon & protocol tests -----------==//
//
// Covers the wire protocol (framing, typed errors), the content-addressed
// artifact store, and the daemon itself over real Unix-domain sockets:
// cache-hit byte-identity, request canonicalization, single-flight dedup
// under concurrent identical clients (the TSan-checked stress test),
// deterministic admission-control saturation, replay/analyze digest
// agreement, and graceful drain semantics.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "serve/ArtifactStore.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "trace/Replay.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

using namespace jrpm;
using jrpm::testutil::ScopedTempDir;

namespace {

/// Starts a daemon on scratch paths inside \p Dir.
struct TestDaemon {
  explicit TestDaemon(const ScopedTempDir &Dir, unsigned MaxActive = 8,
                      unsigned Threads = 2) {
    serve::ServerConfig Cfg;
    Cfg.SocketPath = Dir.file("d.sock");
    Cfg.StoreDir = Dir.file("store");
    Cfg.Threads = Threads;
    Cfg.MaxActive = MaxActive;
    S = std::make_unique<serve::Server>(Cfg);
    std::string Err;
    Started = S->start(&Err);
    EXPECT_TRUE(Started) << Err;
  }

  serve::Response roundTrip(const Json &Req) {
    serve::Client C;
    serve::Response R;
    std::string Err;
    EXPECT_TRUE(C.connect(S->config().SocketPath, &Err)) << Err;
    EXPECT_TRUE(C.request(Req, R, &Err)) << Err;
    return R;
  }

  /// Counter value from a stats round trip.
  std::uint64_t counter(const std::string &Name) {
    Json Stats = Json::object();
    Stats["kind"] = "stats";
    serve::Response R = roundTrip(Stats);
    Json D;
    EXPECT_TRUE(Json::parse(R.Payload, D, nullptr));
    const Json *Counters = D.find("counters");
    const Json *V = Counters ? Counters->find(Name) : nullptr;
    return V ? V->asUint() : 0;
  }

  std::uint64_t gaugeValue(const std::string &Name) {
    Json Stats = Json::object();
    Stats["kind"] = "stats";
    serve::Response R = roundTrip(Stats);
    Json D;
    EXPECT_TRUE(Json::parse(R.Payload, D, nullptr));
    const Json *Gauges = D.find("gauges");
    const Json *V = Gauges ? Gauges->find(Name) : nullptr;
    return V ? V->asUint() : 0;
  }

  std::unique_ptr<serve::Server> S;
  bool Started = false;
};

Json smallSweep() {
  Json Req = Json::object();
  Req["kind"] = "sweep";
  Json W = Json::array();
  W.push("BitOps");
  Req["workloads"] = W;
  Json L = Json::array();
  L.push("base");
  Req["levels"] = L;
  Req["seed"] = std::uint64_t(3);
  return Req;
}

//===----------------------------------------------------------------------===//
// Protocol framing
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, FrameRoundTripAndBinarySafety) {
  std::string Payload("\x00\x01hello\xff\x00", 9); // embedded NULs survive
  std::string Frame = serve::encodeFrame(Payload);
  ASSERT_EQ(Frame.size(), 4 + Payload.size());

  std::string Decoded;
  std::size_t Consumed = 0;
  EXPECT_EQ(serve::decodeFrame(
                reinterpret_cast<const std::uint8_t *>(Frame.data()),
                Frame.size(), Consumed, Decoded),
            serve::FrameStatus::Ok);
  EXPECT_EQ(Consumed, Frame.size());
  EXPECT_EQ(Decoded, Payload);
}

TEST(ServeProtocol, DecodeFrameTypedStatuses) {
  std::string Decoded;
  std::size_t Consumed = 0;

  // Every strict prefix of a valid frame wants more bytes.
  std::string Frame = serve::encodeFrame("abc");
  for (std::size_t N = 0; N < Frame.size(); ++N)
    EXPECT_EQ(serve::decodeFrame(
                  reinterpret_cast<const std::uint8_t *>(Frame.data()), N,
                  Consumed, Decoded),
              serve::FrameStatus::NeedMore)
        << N;

  // Zero-length frames are malformed, not empty requests.
  const std::uint8_t Zero[4] = {0, 0, 0, 0};
  EXPECT_EQ(serve::decodeFrame(Zero, 4, Consumed, Decoded),
            serve::FrameStatus::Malformed);

  // A hostile length prefix is rejected before any allocation.
  const std::uint8_t Huge[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(serve::decodeFrame(Huge, 4, Consumed, Decoded),
            serve::FrameStatus::Oversize);
}

TEST(ServeProtocol, DigestIsCanonical) {
  EXPECT_EQ(serve::fnv1a("abc"), serve::fnv1a("abc"));
  EXPECT_NE(serve::fnv1a("abc"), serve::fnv1a("abd"));
  EXPECT_EQ(serve::digestHex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(serve::digestHex(0).size(), 16u);
}

//===----------------------------------------------------------------------===//
// Artifact store
//===----------------------------------------------------------------------===//

TEST(ServeStore, PutLoadRoundTrip) {
  ScopedTempDir Dir("jrpm-store");
  ASSERT_TRUE(Dir.valid());
  serve::ArtifactStore Store(Dir.file("store"));
  ASSERT_TRUE(Store.ensureRoot());

  const std::uint64_t Digest = 0x0123456789abcdefull;
  EXPECT_FALSE(Store.has(serve::kind::Sweep, Digest));
  std::string Out;
  EXPECT_FALSE(Store.load(serve::kind::Sweep, Digest, Out));

  std::string Bytes("payload\x00with nul", 16);
  ASSERT_TRUE(Store.put(serve::kind::Sweep, Digest, Bytes));
  EXPECT_TRUE(Store.has(serve::kind::Sweep, Digest));
  ASSERT_TRUE(Store.load(serve::kind::Sweep, Digest, Out));
  EXPECT_EQ(Out, Bytes);

  // Kinds are separate namespaces; traces use the .jtrace extension.
  EXPECT_FALSE(Store.has(serve::kind::Replay, Digest));
  std::string P = Store.pathFor(serve::kind::Trace, Digest);
  EXPECT_NE(P.find("/trace/01/0123456789abcdef.jtrace"), std::string::npos);

  serve::StoreStats St = Store.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Puts, 1u);
  EXPECT_EQ(St.PutBytes, Bytes.size());
}

//===----------------------------------------------------------------------===//
// Daemon basics
//===----------------------------------------------------------------------===//

TEST(ServeDaemon, PingStatsAndTypedErrors) {
  ScopedTempDir Dir("jrpm-serve");
  ASSERT_TRUE(Dir.valid());
  TestDaemon D(Dir);

  Json Ping = Json::object();
  Ping["kind"] = "ping";
  serve::Response R = D.roundTrip(Ping);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Cache, "none");
  EXPECT_NE(R.Payload.find("\"pong\": true"), std::string::npos);

  Json Bad = Json::object();
  Bad["kind"] = "frobnicate";
  R = D.roundTrip(Bad);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "unknown_kind");

  Json NoKind = Json::object();
  NoKind["x"] = 1;
  R = D.roundTrip(NoKind);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "bad_request");

  Json BadField = smallSweep();
  BadField["bogus"] = 1;
  R = D.roundTrip(BadField);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "bad_request");

  Json BadWorkload = Json::object();
  BadWorkload["kind"] = "analyze";
  BadWorkload["workload"] = "NoSuchWorkload";
  R = D.roundTrip(BadWorkload);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "bad_request");

  // Non-JSON payload: typed error, connection keeps serving afterwards.
  serve::Client C;
  std::string Err;
  ASSERT_TRUE(C.connect(D.S->config().SocketPath, &Err)) << Err;
  ASSERT_TRUE(C.requestRaw("this is not json", R, &Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "bad_json");
  ASSERT_TRUE(C.request(Ping, R, &Err)) << Err;
  EXPECT_TRUE(R.Ok);

  EXPECT_GE(D.counter("serve.requests"), 5u);
}

TEST(ServeDaemon, SweepCacheHitIsByteIdentical) {
  ScopedTempDir Dir("jrpm-serve");
  ASSERT_TRUE(Dir.valid());
  TestDaemon D(Dir);

  serve::Response First = D.roundTrip(smallSweep());
  ASSERT_TRUE(First.Ok) << First.Message;
  EXPECT_EQ(First.Cache, "miss");
  EXPECT_FALSE(First.Payload.empty());

  serve::Response Second = D.roundTrip(smallSweep());
  ASSERT_TRUE(Second.Ok) << Second.Message;
  EXPECT_EQ(Second.Cache, "hit");
  EXPECT_EQ(Second.Digest, First.Digest);
  EXPECT_EQ(Second.Payload, First.Payload);

  // Canonicalization: spelling the defaults explicitly digests the same.
  Json Explicit = smallSweep();
  Json Cfgs = Json::array();
  Cfgs.push("default");
  Explicit["configs"] = Cfgs;
  Explicit["mode"] = "pipeline";
  Explicit["timeout_ms"] = std::uint64_t(0);
  serve::Response Third = D.roundTrip(Explicit);
  ASSERT_TRUE(Third.Ok) << Third.Message;
  EXPECT_EQ(Third.Digest, First.Digest);
  EXPECT_EQ(Third.Cache, "hit");
  EXPECT_EQ(Third.Payload, First.Payload);

  EXPECT_EQ(D.counter("serve.computed"), 1u);
  EXPECT_GE(D.counter("serve.cache_hits"), 2u);
}

TEST(ServeDaemon, ReplayAgreesWithAnalyzeSelection) {
  ScopedTempDir Dir("jrpm-serve");
  ASSERT_TRUE(Dir.valid());
  TestDaemon D(Dir);

  Json Analyze = Json::object();
  Analyze["kind"] = "analyze";
  Analyze["workload"] = "BitOps";
  serve::Response AR = D.roundTrip(Analyze);
  ASSERT_TRUE(AR.Ok) << AR.Message;

  Json Replay = Json::object();
  Replay["kind"] = "replay";
  Replay["workload"] = "BitOps";
  serve::Response RR = D.roundTrip(Replay);
  ASSERT_TRUE(RR.Ok) << RR.Message;

  Json ADoc, RDoc;
  ASSERT_TRUE(Json::parse(AR.Payload, ADoc, nullptr));
  ASSERT_TRUE(Json::parse(RR.Payload, RDoc, nullptr));
  // Replay under the capture config reproduces the live selection digest.
  ASSERT_NE(ADoc.find("selection_digest"), nullptr);
  ASSERT_NE(RDoc.find("selection_digest"), nullptr);
  EXPECT_EQ(ADoc.find("selection_digest")->str(),
            RDoc.find("selection_digest")->str());

  // A second replay under a different config misses the result cache but
  // shares the recorded capture (same trace digest, no second recording).
  Json Replay2 = Replay;
  Replay2["config"] = "banks=2";
  serve::Response RR2 = D.roundTrip(Replay2);
  ASSERT_TRUE(RR2.Ok) << RR2.Message;
  EXPECT_EQ(RR2.Cache, "miss");
  Json RDoc2;
  ASSERT_TRUE(Json::parse(RR2.Payload, RDoc2, nullptr));
  EXPECT_EQ(RDoc.find("capture")->find("trace_digest")->str(),
            RDoc2.find("capture")->find("trace_digest")->str());
}

//===----------------------------------------------------------------------===//
// Concurrency: single-flight dedup & admission control
//===----------------------------------------------------------------------===//

TEST(ServeConcurrent, SingleFlightDeduplicatesIdenticalRequests) {
  ScopedTempDir Dir("jrpm-serve");
  ASSERT_TRUE(Dir.valid());
  TestDaemon D(Dir, /*MaxActive=*/8, /*Threads=*/2);

  constexpr int NumClients = 8;
  std::vector<serve::Response> Results(NumClients);
  std::atomic<int> TransportFailures{0};
  {
    std::vector<std::thread> Clients;
    for (int I = 0; I < NumClients; ++I)
      Clients.emplace_back([&, I] {
        serve::Client C;
        serve::Response R;
        std::string Err;
        if (!C.connect(D.S->config().SocketPath, &Err) ||
            !C.request(smallSweep(), R, &Err)) {
          ++TransportFailures;
          return;
        }
        Results[I] = R;
      });
    for (std::thread &T : Clients)
      T.join();
  }
  EXPECT_EQ(TransportFailures.load(), 0);

  // Everyone got the same bytes; exactly one computation happened —
  // whether a client led, joined the flight, or arrived late and hit the
  // store.
  for (const serve::Response &R : Results) {
    ASSERT_TRUE(R.Ok) << R.Message;
    EXPECT_EQ(R.Digest, Results[0].Digest);
    EXPECT_EQ(R.Payload, Results[0].Payload);
    EXPECT_TRUE(R.Cache == "miss" || R.Cache == "join" || R.Cache == "hit")
        << R.Cache;
  }
  EXPECT_EQ(D.counter("serve.computed"), 1u);
  EXPECT_EQ(D.counter("serve.cache_hits") + D.counter("serve.dedup_joined"),
            static_cast<std::uint64_t>(NumClients - 1));
}

TEST(ServeConcurrent, SaturationRejectsWithTypedError) {
  ScopedTempDir Dir("jrpm-serve");
  ASSERT_TRUE(Dir.valid());
  TestDaemon D(Dir, /*MaxActive=*/1, /*Threads=*/1);

  // A heavier sweep occupies the single admission slot...
  Json Heavy = Json::object();
  Heavy["kind"] = "sweep";
  Json W = Json::array();
  W.push("fft");
  W.push("BitOps");
  Heavy["workloads"] = W;
  std::thread Leader([&] {
    serve::Response R = D.roundTrip(Heavy);
    EXPECT_TRUE(R.Ok) << R.Message;
  });

  // ...wait (via the always-admitted stats kind) until it is admitted,
  // then a *different* request must be rejected with the typed error.
  while (D.gaugeValue("serve.active") == 0)
    std::this_thread::yield();

  serve::Response R = D.roundTrip(smallSweep());
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "saturated");
  EXPECT_GE(D.counter("serve.rejected_saturated"), 1u);

  Leader.join();

  // With the slot free again the same request computes fine.
  R = D.roundTrip(smallSweep());
  EXPECT_TRUE(R.Ok) << R.Message;
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

TEST(ServeDaemon, DrainRejectsNewWorkAndExitsCleanly) {
  ScopedTempDir Dir("jrpm-serve");
  ASSERT_TRUE(Dir.valid());
  TestDaemon D(Dir);

  serve::Client C;
  serve::Response R;
  std::string Err;
  ASSERT_TRUE(C.connect(D.S->config().SocketPath, &Err)) << Err;

  Json Ping = Json::object();
  Ping["kind"] = "ping";
  ASSERT_TRUE(C.request(Ping, R, &Err)) << Err;
  EXPECT_TRUE(R.Ok);

  D.S->requestStop();
  D.S->waitForStop();

  // The live connection still answers, but compute kinds are refused with
  // the draining error; monitoring kinds stay available.
  ASSERT_TRUE(C.request(smallSweep(), R, &Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Code, "draining");
  ASSERT_TRUE(C.request(Ping, R, &Err)) << Err;
  EXPECT_TRUE(R.Ok);

  C.close();
  D.S->drain(); // joins everything; double-drain via dtor is a no-op
}

//===----------------------------------------------------------------------===//
// Store-backed restart
//===----------------------------------------------------------------------===//

TEST(ServeDaemon, ArtifactsSurviveDaemonRestart) {
  ScopedTempDir Dir("jrpm-serve");
  ASSERT_TRUE(Dir.valid());

  std::string FirstPayload, FirstDigest;
  {
    TestDaemon D(Dir);
    serve::Response R = D.roundTrip(smallSweep());
    ASSERT_TRUE(R.Ok) << R.Message;
    EXPECT_EQ(R.Cache, "miss");
    FirstPayload = R.Payload;
    FirstDigest = R.Digest;
  } // drained & destroyed

  TestDaemon D2(Dir);
  serve::Response R = D2.roundTrip(smallSweep());
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(R.Cache, "hit"); // served straight from the on-disk store
  EXPECT_EQ(R.Digest, FirstDigest);
  EXPECT_EQ(R.Payload, FirstPayload);
  EXPECT_EQ(D2.counter("serve.computed"), 0u);
}

} // namespace
