//===- tests/tracer_stores_test.cpp - Timestamp storage unit tests ---------==//

#include "tracer/TimestampStores.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::tracer;

TEST(HeapStoreTimestamps, RecordsAndLooksUpWords) {
  HeapStoreTimestamps H(/*CapacityLines=*/4, /*WordsPerLine=*/4);
  EXPECT_EQ(H.lookup(100), NoTimestamp);
  H.recordStore(100, 55);
  EXPECT_EQ(H.lookup(100), 55u);
  // Same line, different word: independent timestamps.
  H.recordStore(101, 77);
  EXPECT_EQ(H.lookup(100), 55u);
  EXPECT_EQ(H.lookup(101), 77u);
  EXPECT_EQ(H.lookup(102), NoTimestamp);
}

TEST(HeapStoreTimestamps, FifoEvictsOldestLine) {
  HeapStoreTimestamps H(2, 4);
  H.recordStore(0, 1);  // line 0
  H.recordStore(4, 2);  // line 1
  H.recordStore(8, 3);  // line 2 -> evicts line 0
  EXPECT_EQ(H.lookup(0), NoTimestamp);
  EXPECT_EQ(H.lookup(4), 2u);
  EXPECT_EQ(H.lookup(8), 3u);
}

TEST(HeapStoreTimestamps, RewriteDoesNotGrow) {
  HeapStoreTimestamps H(2, 4);
  H.recordStore(0, 1);
  H.recordStore(1, 2); // same line
  H.recordStore(4, 3);
  H.recordStore(0, 9); // overwrite word 0, still same line
  EXPECT_EQ(H.lookup(0), 9u);
  EXPECT_EQ(H.lookup(4), 3u);
}

TEST(CacheLineTimestamps, DirectMappedExchange) {
  CacheLineTimestampTable T(/*NumEntries=*/4, /*WordsPerLine=*/4);
  EXPECT_EQ(T.exchange(0, 10), NoTimestamp);
  EXPECT_EQ(T.exchange(1, 20), 10u); // same line: returns old
  // 4 entries x 4 words: address 64 maps to the same set as address 0
  // (line 16 % 4 == line 0 % 4) with a different tag -> miss, evict.
  EXPECT_EQ(T.exchange(64, 30), NoTimestamp);
  EXPECT_EQ(T.exchange(0, 40), NoTimestamp); // was evicted
}

TEST(CacheLineTimestamps, AssociativeAvoidsConflict) {
  CacheLineTimestampTable T(/*NumEntries=*/4, /*WordsPerLine=*/4,
                            /*Associativity=*/2);
  // Two lines mapping to the same set coexist with 2-way associativity.
  EXPECT_EQ(T.exchange(0, 10), NoTimestamp);
  EXPECT_EQ(T.exchange(32, 20), NoTimestamp); // line 8, set 0 with 2 sets
  EXPECT_EQ(T.exchange(0, 30), 10u);
  EXPECT_EQ(T.exchange(32, 40), 20u);
}

TEST(LocalVarTimestamps, StackDiscipline) {
  LocalVarTimestampFile F(8);
  int A = F.reserve(3);
  ASSERT_EQ(A, 0);
  int B = F.reserve(4);
  ASSERT_EQ(B, 3);
  EXPECT_EQ(F.used(), 7u);
  // Full: a reservation of 2 must fail.
  EXPECT_EQ(F.reserve(2), -1);
  F.write(4, 99);
  EXPECT_EQ(F.read(4), 99u);
  EXPECT_EQ(F.release(3, 4), SlotReleaseResult::Ok);
  EXPECT_EQ(F.used(), 3u);
  // Slots are cleared on (re-)reservation.
  int C = F.reserve(4);
  ASSERT_EQ(C, 3);
  EXPECT_EQ(F.read(4), NoTimestamp);
}

TEST(LocalVarTimestamps, ZeroSizedReservation) {
  LocalVarTimestampFile F(4);
  EXPECT_EQ(F.reserve(0), 0);
  EXPECT_EQ(F.used(), 0u);
}

#ifdef NDEBUG
TEST(LocalVarTimestamps, NonStackReleaseReportsTypedError) {
  LocalVarTimestampFile F(8);
  ASSERT_EQ(F.reserve(4), 0);
  // Releasing a range that is not the top of the stack is a caller bug;
  // release builds report it without corrupting the file.
  EXPECT_EQ(F.release(1, 4), SlotReleaseResult::NonStackRelease);
  EXPECT_EQ(F.used(), 4u); // unchanged
  EXPECT_EQ(F.release(0, 4), SlotReleaseResult::Ok);
  EXPECT_EQ(F.used(), 0u);
}
#endif

TEST(HeapStoreTimestamps, CountsEvictionsAndPeakOccupancy) {
  HeapStoreTimestamps H(2, 4);
  EXPECT_EQ(H.evictions(), 0u);
  EXPECT_EQ(H.peakOccupancy(), 0u);
  H.recordStore(0, 1);
  H.recordStore(4, 2);
  EXPECT_EQ(H.evictions(), 0u);
  EXPECT_EQ(H.peakOccupancy(), 2u);
  H.recordStore(8, 3); // full: rotates out the oldest line
  EXPECT_EQ(H.evictions(), 1u);
  EXPECT_EQ(H.peakOccupancy(), 2u); // capacity-bounded
  H.clear();
  // Counters are monotonic across clears (lifetime totals).
  EXPECT_EQ(H.evictions(), 1u);
  EXPECT_EQ(H.peakOccupancy(), 2u);
  EXPECT_EQ(H.lookup(8), NoTimestamp);
}

TEST(CacheLineTimestamps, CountsEvictionsAndPeakOccupancy) {
  CacheLineTimestampTable T(/*NumEntries=*/4, /*WordsPerLine=*/4);
  EXPECT_EQ(T.evictions(), 0u);
  T.exchange(0, 10);
  T.exchange(64, 20); // conflict miss in the direct-mapped set
  EXPECT_EQ(T.evictions(), 1u);
  EXPECT_EQ(T.peakOccupancy(), 1u);
  T.exchange(4, 30); // line 1 -> a second set fills
  EXPECT_EQ(T.peakOccupancy(), 2u);
  T.clear();
  EXPECT_EQ(T.evictions(), 1u);
  EXPECT_EQ(T.peakOccupancy(), 2u);
}
