//===- tests/hwcost_test.cpp - Table 5 transistor model tests --------------==//

#include "hwcost/TransistorModel.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::hwcost;

TEST(TransistorModel, MatchesTable5SramArithmetic) {
  sim::HydraConfig Cfg;
  CostBreakdown B = estimateHydraCost(Cfg);

  auto Find = [&](const std::string &Name) -> const StructureCost * {
    for (const auto &S : B.Structures)
      if (S.Name == Name)
        return &S;
    return nullptr;
  };

  // Paper: 16kB I + 16kB D = 1573K transistors each core.
  const StructureCost *L1 = Find("16kB I / 16kB D cache");
  ASSERT_NE(L1, nullptr);
  EXPECT_EQ(L1->Each, 32ull * 1024 * 8 * 6); // 1,572,864
  EXPECT_EQ(L1->Count, 4u);

  // Paper: 2MB L2 = 98304K.
  const StructureCost *L2 = Find("2MB L2 cache");
  ASSERT_NE(L2, nullptr);
  EXPECT_EQ(L2->Each, 98304ull * 1024);

  // Paper: CPU + FP core 2500K each, 4 cores.
  const StructureCost *Cpu = Find("CPU + FP core");
  ASSERT_NE(Cpu, nullptr);
  EXPECT_EQ(Cpu->Each, 2500ull * 1000);
}

TEST(TransistorModel, WriteBuffersNearPaperEstimate) {
  sim::HydraConfig Cfg;
  CostBreakdown B = estimateHydraCost(Cfg);
  for (const auto &S : B.Structures)
    if (S.Name == "Write buffer") {
      EXPECT_EQ(S.Count, 5u);
      // Paper says 172K per buffer; our model lands within 25%.
      EXPECT_GT(S.Each, 130ull * 1000);
      EXPECT_LT(S.Each, 215ull * 1000);
    }
}

TEST(TransistorModel, ComparatorBankSmall) {
  CostParams P;
  std::uint64_t Bank = comparatorBankTransistors(P);
  // Paper: 39K per bank. Same order of magnitude.
  EXPECT_GT(Bank, 15ull * 1000);
  EXPECT_LT(Bank, 80ull * 1000);
}

TEST(TransistorModel, TestHardwareUnderOnePercent) {
  // The paper's headline: TEST adds < 1% of the CMP transistor count
  // (Table 5 reports 0.28% for the comparator banks).
  sim::HydraConfig Cfg;
  CostBreakdown B = estimateHydraCost(Cfg);
  double Frac = B.fractionOf("Comparator bank");
  EXPECT_GT(Frac, 0.0);
  EXPECT_LT(Frac, 0.01);
}

TEST(TransistorModel, TotalNearPaperTotal) {
  // Paper total: 115,778K transistors. Allow 10%.
  sim::HydraConfig Cfg;
  CostBreakdown B = estimateHydraCost(Cfg);
  double Total = static_cast<double>(B.total());
  EXPECT_GT(Total, 115778e3 * 0.9);
  EXPECT_LT(Total, 115778e3 * 1.1);
}

TEST(TransistorModel, ScalesWithBankCount) {
  sim::HydraConfig Small;
  Small.ComparatorBanks = 4;
  sim::HydraConfig Big;
  Big.ComparatorBanks = 16;
  EXPECT_LT(estimateHydraCost(Small).total(), estimateHydraCost(Big).total());
  // Even 16 banks stay well under 1%.
  EXPECT_LT(estimateHydraCost(Big).fractionOf("Comparator bank"), 0.01);
}
