//===- tests/RandomProgram.h - Shim over the shared corpus generator -------==//
//
// The seeded structured-program generator used to live here; it was
// promoted to src/corpus/Generator.h so the corpus engine and the fuzz
// suites share one implementation (and one frozen seed-to-module mapping).
// This shim keeps the historical testutil spelling working.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TESTS_RANDOMPROGRAM_H
#define JRPM_TESTS_RANDOMPROGRAM_H

#include "corpus/Generator.h"

namespace jrpm {
namespace testutil {

using corpus::ProgramGenerator;

} // namespace testutil
} // namespace jrpm

#endif // JRPM_TESTS_RANDOMPROGRAM_H
