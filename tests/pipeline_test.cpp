//===- tests/pipeline_test.cpp - End-to-end Jrpm pipeline tests ------------==//

#include "jrpm/Pipeline.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::pipeline;

TEST(Pipeline, HuffmanEndToEnd) {
  const workloads::Workload *W = workloads::findWorkload("Huffman");
  ASSERT_NE(W, nullptr);
  Jrpm J(W->Build(), PipelineConfig{});
  PipelineResult R = J.runAll();

  // Step 2: profiling is a mild slowdown, not a 100x one.
  EXPECT_GT(R.profilingSlowdown(), 1.0);
  EXPECT_LT(R.profilingSlowdown(), 2.0);

  // Step 3: the decode loop family is found; several STLs selected.
  EXPECT_GE(R.Selection.SelectedLoops.size(), 3u);
  EXPECT_GT(R.Selection.PredictedSpeedup, 1.2);

  // Step 5: speculative execution is faster and bit-identical.
  EXPECT_EQ(R.TlsRun.ReturnValue, R.PlainRun.ReturnValue);
  EXPECT_GT(R.actualSpeedup(), 1.1);

  // The decode loop's threads match the paper's granularity (~108 cycles).
  bool FoundDecodeLike = false;
  for (const auto &Rep : R.Selection.Loops) {
    double T = Rep.Stats.avgThreadSize();
    if (Rep.Selected && Rep.Stats.Threads > 2000 && T > 60 && T < 200 &&
        Rep.Stats.CritArcsPrev > 1000)
      FoundDecodeLike = true;
  }
  EXPECT_TRUE(FoundDecodeLike);
}

TEST(Pipeline, ProfileIsDeterministic) {
  const workloads::Workload *W = workloads::findWorkload("BitOps");
  ASSERT_NE(W, nullptr);
  Jrpm J1(W->Build(), PipelineConfig{});
  Jrpm J2(W->Build(), PipelineConfig{});
  auto P1 = J1.profileAndSelect();
  auto P2 = J2.profileAndSelect();
  EXPECT_EQ(P1.Run.Cycles, P2.Run.Cycles);
  ASSERT_EQ(P1.Selection.Loops.size(), P2.Selection.Loops.size());
  for (std::size_t I = 0; I < P1.Selection.Loops.size(); ++I) {
    EXPECT_EQ(P1.Selection.Loops[I].Stats.Threads,
              P2.Selection.Loops[I].Stats.Threads);
    EXPECT_EQ(P1.Selection.Loops[I].Selected,
              P2.Selection.Loops[I].Selected);
  }
}

TEST(Pipeline, BaseAnnotationsCostMoreThanOptimized) {
  const workloads::Workload *W = workloads::findWorkload("Huffman");
  PipelineConfig Base;
  Base.Level = jit::AnnotationLevel::Base;
  PipelineConfig Opt;
  Opt.Level = jit::AnnotationLevel::Optimized;
  Jrpm JB(W->Build(), Base);
  Jrpm JO(W->Build(), Opt);
  auto RB = JB.profileAndSelect();
  auto RO = JO.profileAndSelect();
  EXPECT_GT(RB.Run.Cycles, RO.Run.Cycles);
}

TEST(Pipeline, EightBanksCoverTypicalNests) {
  // Paper Section 6.1: "eight comparator banks are sufficient to analyze
  // most of the benchmark programs".
  const workloads::Workload *W = workloads::findWorkload("Assignment");
  Jrpm J(W->Build(), PipelineConfig{});
  auto P = J.profileAndSelect();
  EXPECT_LE(P.PeakBanksInUse, 8u);
  EXPECT_LE(P.PeakLocalSlots, 64u);
}

TEST(Pipeline, PcBinningIdentifiesDependencySites) {
  const workloads::Workload *W = workloads::findWorkload("Huffman");
  PipelineConfig Cfg;
  Cfg.ExtendedPcBinning = true;
  Jrpm J(W->Build(), Cfg);
  auto P = J.profileAndSelect();
  // At least one selected loop carries PC-binned critical arc data.
  bool FoundBins = false;
  for (const auto &Rep : P.Selection.Loops)
    if (Rep.Selected && !Rep.Stats.PcBins.empty())
      FoundBins = true;
  EXPECT_TRUE(FoundBins);
}
