//===- tests/lint_json_test.cpp - Structured lint report tests -------------==//
//
// Drives jrpm::lint::lintWorkload directly (the library behind
// jrpm-lint --json) and checks the document schema: per-diagnostic pass
// and severity, per-loop id and reject kind, the oracle block when the
// affine oracle is on, and byte-level determinism across runs — the
// property the registry-wide golden gate holds process-wide.
//
//===----------------------------------------------------------------------===//

#include "analysis/Candidates.h"
#include "analysis/StaticOracle.h"
#include "jrpm/LintReport.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>

using namespace jrpm;
using namespace jrpm::analysis;

namespace {

const workloads::Workload &wl(const char *Name) {
  const workloads::Workload *W = workloads::findWorkload(Name);
  EXPECT_NE(W, nullptr) << Name;
  return *W;
}

} // namespace

TEST(LintJson, CleanWorkloadSchema) {
  ir::Module M = wl("BitOps").Build();
  AnalysisOptions Opts;
  lint::WorkloadLint R = lint::lintWorkload("BitOps", M, Opts);
  EXPECT_EQ(R.Violations, 0u);

  const Json *Name = R.Doc.find("workload");
  ASSERT_NE(Name, nullptr);
  EXPECT_EQ(Name->str(), "BitOps");

  const Json *Violations = R.Doc.find("violations");
  ASSERT_NE(Violations, nullptr);
  EXPECT_EQ(Violations->asUint(), 0u);

  const Json *Diags = R.Doc.find("diagnostics");
  ASSERT_NE(Diags, nullptr);
  EXPECT_TRUE(Diags->items().empty());

  const Json *Loops = R.Doc.find("loops");
  ASSERT_NE(Loops, nullptr);
  ASSERT_FALSE(Loops->items().empty());

  ModuleAnalysis MA(M, Opts);
  ASSERT_EQ(Loops->items().size(), MA.candidates().size());
  for (std::size_t I = 0; I < Loops->items().size(); ++I) {
    const Json &L = Loops->items()[I];
    const Json *Id = L.find("id");
    ASSERT_NE(Id, nullptr);
    EXPECT_EQ(Id->asUint(), I);
    const Json *Status = L.find("status");
    ASSERT_NE(Status, nullptr);
    EXPECT_TRUE(Status->str() == "candidate" || Status->str() == "rejected");
    const Json *Reject = L.find("reject");
    ASSERT_NE(Reject, nullptr);
    RejectKind K = RejectKind::None;
    EXPECT_TRUE(rejectKindFromName(Reject->str(), K)) << Reject->str();
    // No oracle block unless the oracle ran.
    EXPECT_EQ(L.find("oracle"), nullptr);
    for (const char *Key :
         {"loads", "stores", "raw", "waw", "may", "independent"})
      EXPECT_NE(L.find(Key), nullptr) << Key;
  }
}

TEST(LintJson, OracleBlockPresentAndWellFormed) {
  ir::Module M = wl("NumHeapSort").Build();
  AnalysisOptions Opts;
  Opts.AffineOracle = true;
  lint::WorkloadLint R = lint::lintWorkload("NumHeapSort", M, Opts);

  const Json *Loops = R.Doc.find("loops");
  ASSERT_NE(Loops, nullptr);
  ASSERT_FALSE(Loops->items().empty());
  for (const Json &L : Loops->items()) {
    const Json *O = L.find("oracle");
    ASSERT_NE(O, nullptr);
    const Json *Verdict = O->find("verdict");
    ASSERT_NE(Verdict, nullptr);
    EXPECT_TRUE(Verdict->str() ==
                    oracleVerdictName(OracleVerdict::Unknown) ||
                Verdict->str() ==
                    oracleVerdictName(OracleVerdict::ProvablySerial) ||
                Verdict->str() ==
                    oracleVerdictName(OracleVerdict::ProvablyParallel));
    const Json *Pairs = O->find("pairs");
    ASSERT_NE(Pairs, nullptr);
    const Json *Total = Pairs->find("total");
    const Json *Indep = Pairs->find("independent");
    const Json *Affine = Pairs->find("affine");
    const Json *May = Pairs->find("may");
    ASSERT_NE(Total, nullptr);
    ASSERT_NE(Indep, nullptr);
    ASSERT_NE(Affine, nullptr);
    ASSERT_NE(May, nullptr);
    EXPECT_LE(Indep->asUint() + May->asUint(), Total->asUint() + 0u);
    EXPECT_LE(Affine->asUint(), Total->asUint());
  }
}

TEST(LintJson, ReportIsDeterministic) {
  AnalysisOptions Opts;
  Opts.AffineOracle = true;
  for (const char *Name : {"compress", "fft", "LuFactor"}) {
    ir::Module M1 = wl(Name).Build();
    ir::Module M2 = wl(Name).Build();
    std::string A = lint::lintWorkload(Name, M1, Opts).Doc.dump();
    std::string B = lint::lintWorkload(Name, M2, Opts).Doc.dump();
    EXPECT_EQ(A, B) << Name;
    EXPECT_FALSE(A.empty());
  }
}

TEST(LintJson, PrefilterRejectionSurfacesInReport) {
  // Workload-independent check that a rejected loop carries a named,
  // round-trippable reject kind: sweep the registry under the oracle and
  // require every rejected loop's kind to parse back.
  AnalysisOptions Opts;
  Opts.AffineOracle = true;
  std::uint32_t RejectedSeen = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    ir::Module M = W.Build();
    lint::WorkloadLint R = lint::lintWorkload(W.Name, M, Opts);
    const Json *Loops = R.Doc.find("loops");
    ASSERT_NE(Loops, nullptr) << W.Name;
    for (const Json &L : Loops->items()) {
      const Json *Status = L.find("status");
      const Json *Reject = L.find("reject");
      ASSERT_NE(Status, nullptr);
      ASSERT_NE(Reject, nullptr);
      RejectKind K = RejectKind::None;
      ASSERT_TRUE(rejectKindFromName(Reject->str(), K)) << Reject->str();
      if (Status->str() == "rejected") {
        ++RejectedSeen;
        EXPECT_NE(K, RejectKind::None);
      } else {
        EXPECT_EQ(K, RejectKind::None);
      }
    }
  }
  // The registry contains loops the optimistic screen already rejects.
  EXPECT_GT(RejectedSeen, 0u);
}
