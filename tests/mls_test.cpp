//===- tests/mls_test.cpp - Method-level speculation coverage tests --------==//

#include "TestUtil.h"
#include "tracer/MlsTracer.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::front;
using jrpm::testutil::makeMain;

namespace {

/// Runs the module with the MLS tracer attached.
tracer::MlsTracer traceMls(const ir::Module &M) {
  sim::HydraConfig Cfg;
  tracer::MlsTracer Tracer(Cfg);
  interp::Machine Machine(M, Cfg);
  Machine.setTraceSink(&Tracer);
  auto R = Machine.run();
  Tracer.finish(R.Cycles);
  return Tracer;
}

ir::Module makeCallProgram(bool ContinuationDependsOnCallee) {
  // work(out): writes out[0..15] with derived values.
  ProgramDef P;
  FuncDef Work;
  Work.Name = "work";
  Work.Params = {"out"};
  Work.Body = seq({
      forLoop("k", c(0), lt(v("k"), c(16)), 1,
              store(v("out"), v("k"),
                    band(mul(add(v("k"), c(3)), c(2654435761LL)),
                         c(0xFFFF)))),
      ret(),
  });
  FuncDef Main;
  Main.Name = "main";
  std::vector<St> Body = {
      assign("buf", allocWords(c(16))),
      assign("other", allocWords(c(16))),
      forLoop("i", c(0), lt(v("i"), c(16)), 1,
              store(v("other"), v("i"), v("i"))),
      assign("s", c(0)),
  };
  for (int Call = 0; Call < 20; ++Call) {
    Body.push_back(exprStmt(call("work", {v("buf")})));
    // The continuation after each call: either independent work over
    // `other`, or immediate consumption of the callee's output.
    if (ContinuationDependsOnCallee)
      Body.push_back(assign("s", add(v("s"), ld(v("buf"), c(0)))));
    else
      Body.push_back(forLoop("i", c(0), lt(v("i"), c(16)), 1,
                             assign("s", add(v("s"),
                                             ld(v("other"), v("i"))))));
  }
  Body.push_back(ret(v("s")));
  Main.Body = seq(std::move(Body));
  P.Functions.push_back(std::move(Work));
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

} // namespace

namespace {

tracer::MlsSiteStats aggregate(const tracer::MlsTracer &T) {
  tracer::MlsSiteStats Sum;
  for (const auto &[Pc, S] : T.siteStats()) {
    Sum.Invocations += S.Invocations;
    Sum.CalleeCycles += S.CalleeCycles;
    Sum.OverlapCycles += S.OverlapCycles;
  }
  return Sum;
}

} // namespace

TEST(MlsTracer, IndependentContinuationGetsFullOverlap) {
  // 20 straight-line call statements = 20 static call sites.
  tracer::MlsTracer T = traceMls(makeCallProgram(false));
  EXPECT_EQ(T.siteStats().size(), 20u);
  tracer::MlsSiteStats S = aggregate(T);
  EXPECT_EQ(S.Invocations, 20u);
  EXPECT_GT(S.CalleeCycles, 0u);
  // The independent continuation is longer than the callee: near-full
  // overlap is provable (the last call's window is cut by program end).
  EXPECT_GT(S.overlapFraction(), 0.85);
}

TEST(MlsTracer, DependentContinuationGetsAlmostNone) {
  tracer::MlsTracer T = traceMls(makeCallProgram(true));
  tracer::MlsSiteStats S = aggregate(T);
  EXPECT_EQ(S.Invocations, 20u);
  // The continuation's first load hits the callee's stores immediately.
  EXPECT_LT(S.overlapFraction(), 0.1);
}

TEST(MlsTracer, NestedCallsTrackedIndependently) {
  ProgramDef P;
  FuncDef Inner;
  Inner.Name = "inner";
  Inner.Params = {"x"};
  Inner.Body = seq({ret(add(v("x"), c(1)))});
  FuncDef Outer;
  Outer.Name = "outer";
  Outer.Params = {"x"};
  Outer.Body = seq({ret(call("inner", {mul(v("x"), c(2))}))});
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(10)), 1,
              assign("s", add(v("s"), call("outer", {v("i")})))),
      ret(v("s")),
  });
  P.Functions.push_back(std::move(Inner));
  P.Functions.push_back(std::move(Outer));
  P.Functions.push_back(std::move(Main));
  ir::Module M = front::lowerProgram(P);
  tracer::MlsTracer T = traceMls(M);
  EXPECT_EQ(T.siteStats().size(), 2u); // the two static call sites
  for (const auto &[Pc, S] : T.siteStats())
    EXPECT_EQ(S.Invocations, 10u);
}

TEST(MlsTracer, NoCallsNoStats) {
  tracer::MlsTracer T = traceMls(makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(8)), 1,
              assign("s", add(v("s"), v("i")))),
      ret(v("s")),
  })));
  EXPECT_TRUE(T.siteStats().empty());
  EXPECT_EQ(T.totalOverlapCycles(), 0u);
}
