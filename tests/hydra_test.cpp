//===- tests/hydra_test.cpp - TLS engine behavioural tests -----------------==//
//
// Builds small loops, recompiles them with buildTlsPlan/TlsEngine, and
// checks speculative execution against sequential ground truth: results,
// violations, forwarding, overflow stalls, reductions, inductors, and
// loop-exit state.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "hydra/TlsCodegen.h"
#include "hydra/TlsEngine.h"
#include "jit/TlsPlan.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::front;
using jrpm::testutil::makeMain;
using jrpm::testutil::runModule;

namespace {

/// Runs \p M speculatively with every non-rejected loop selected.
struct TlsRun {
  interp::RunResult Result;
  hydra::TlsLoopRunStats Totals;
};

TlsRun runAllLoopsTls(const ir::Module &M,
                      sim::HydraConfig Cfg = sim::HydraConfig()) {
  analysis::ModuleAnalysis MA(M);
  std::vector<jit::TlsLoopPlan> Plans;
  for (const auto &C : MA.candidates())
    if (!C.Rejected)
      Plans.push_back(jit::buildTlsPlan(MA, C));
  hydra::TlsEngine Engine(M, Cfg, std::move(Plans));
  interp::Machine Machine(M, Cfg);
  Machine.setDispatcher(&Engine);
  TlsRun R;
  R.Result = Machine.run();
  R.Totals = Engine.totals();
  return R;
}

} // namespace

TEST(TlsCodegen, GlobalizesCarriedLocal) {
  ir::Module M = makeMain(seq({
      assign("x", c(1)),
      assign("n", c(10)),
      forLoop("i", c(0), lt(v("i"), v("n")), 1,
              assign("x", add(mul(v("x"), c(2)), v("i")))),
      ret(v("x")),
  }));
  analysis::ModuleAnalysis MA(M);
  ASSERT_EQ(MA.candidates().size(), 1u);
  jit::TlsLoopPlan Plan = jit::buildTlsPlan(MA, MA.candidates()[0]);
  ASSERT_EQ(Plan.CarriedLocals.size(), 1u);
  ASSERT_EQ(Plan.Inductors.size(), 1u);

  std::vector<std::uint32_t> Spill = {1000};
  ir::Function G =
      hydra::globalizeLoopBody(M.Functions[0], Plan, Spill);
  // Same block structure, extra load/store instructions at the spill
  // address inside loop blocks.
  EXPECT_EQ(G.Blocks.size(), M.Functions[0].Blocks.size());
  std::uint64_t SpillLoads = 0, SpillStores = 0;
  for (const auto &BB : G.Blocks)
    for (const auto &I : BB.Instructions) {
      if (I.Op == ir::Opcode::Load && I.Imm == 1000 && I.A == ir::NoReg)
        ++SpillLoads;
      if (I.Op == ir::Opcode::Store && I.Imm == 1000 && I.A == ir::NoReg)
        ++SpillStores;
    }
  EXPECT_GE(SpillLoads, 1u);
  EXPECT_GE(SpillStores, 1u);
}

TEST(TlsEngine, ParallelLoopSpeedsUpAndMatches) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(256))),
      forLoop("i", c(0), lt(v("i"), c(256)), 1,
              seq({
                  assign("acc", v("i")),
                  forLoop("k", c(0), lt(v("k"), c(20)), 1,
                          assign("acc",
                                 band(add(mul(v("acc"), c(33)), c(7)),
                                      c(0xFFFFF)))),
                  store(v("a"), v("i"), v("acc")),
              })),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(256)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
  EXPECT_LT(Tls.Result.Cycles, Seq.Cycles); // real speedup
  EXPECT_GT(Tls.Totals.CommittedThreads, 250u);
}

TEST(TlsEngine, SerialChainStaysCorrectDespiteViolations) {
  // a[i] = a[i-1] * 3 + 1: every iteration depends on the previous one.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(128))),
      store(v("a"), c(0), c(1)),
      forLoop("i", c(1), lt(v("i"), c(128)), 1,
              store(v("a"), v("i"),
                    add(mul(ld(v("a"), sub(v("i"), c(1))), c(3)), c(1)))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              assign("s", bxor(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
  EXPECT_GT(Tls.Totals.Violations, 0u); // speculation kept failing
}

TEST(TlsEngine, IntReductionExact) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(512))),
      forLoop("i", c(0), lt(v("i"), c(512)), 1,
              store(v("a"), v("i"), mul(v("i"), c(7)))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(512)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, FloatReductionExactForSingleAddPerIteration) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(128))),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              store(v("a"), v("i"),
                    fdiv(cf(1.0), itof(add(v("i"), c(1)))))),
      assign("s", cf(0.0)),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              assign("s", fadd(v("s"), ld(v("a"), v("i"))))),
      ret(ftoi(fmul(v("s"), cf(1e9)))),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  // Single-iteration threads commit in order, so even the float bits match.
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, InductorFinalValueCorrect) {
  // The loop's return value depends on the inductor's final value.
  ir::Module M = makeMain(seq({
      assign("i", c(0)),
      assign("s", c(0)),
      whileLoop(lt(v("i"), c(77)),
                seq({
                    assign("s", add(v("s"), c(2))),
                    assign("i", add(v("i"), c(3))),
                })),
      ret(add(mul(v("i"), c(1000)), v("s"))),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, ZeroIterationLoop) {
  ir::Module M = makeMain(seq({
      assign("n", c(0)),
      assign("s", c(5)),
      forLoop("i", c(0), lt(v("i"), v("n")), 1,
              assign("s", add(v("s"), c(100)))),
      ret(v("s")),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
  EXPECT_EQ(Tls.Result.ReturnValue, 5u);
}

TEST(TlsEngine, BreakExitAdoptsCorrectState) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(128))),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              store(v("a"), v("i"), srem(mul(v("i"), c(29)), c(97)))),
      assign("found", c(-1)),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              iff(eq(ld(v("a"), v("i")), c(42)),
                  seq({assign("found", v("i")), brk()}))),
      ret(v("found")),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, StoreBufferOverflowStallsButStaysCorrect) {
  sim::HydraConfig Cfg;
  Cfg.SpecStoreLines = 4; // tiny buffer: 16 words
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(64 * 40))),
      forLoop("i", c(0), lt(v("i"), c(40)), 1,
              forLoop("k", c(0), lt(v("k"), c(64)), 1,
                      store(v("a"), add(mul(v("i"), c(64)), v("k")),
                            add(v("i"), v("k"))))),
      ret(ld(v("a"), c(64 * 39 + 63))),
  }));
  auto Seq = runModule(M, Cfg);
  auto Tls = runAllLoopsTls(M, Cfg);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
  EXPECT_GT(Tls.Totals.OverflowStalls, 0u);
}

TEST(TlsEngine, ForwardingDeliversEarlierThreadsStores) {
  // Iteration i reads the slot written by iteration i-1 *early* in the
  // body and writes its own slot immediately: short arcs, so forwarding
  // (not violation) should dominate and the loop still speeds up a bit.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(300))),
      store(v("a"), c(0), c(7)),
      forLoop(
          "i", c(1), lt(v("i"), c(256)), 1,
          seq({
              assign("prev", ld(v("a"), sub(v("i"), c(1)))),
              store(v("a"), v("i"), add(v("prev"), c(1))),
              // Trailing independent work keeps the arc short relative to
              // the thread size.
              assign("w", v("i")),
              forLoop("k", c(0), lt(v("k"), c(12)), 1,
                      assign("w", band(add(mul(v("w"), c(33)), c(7)),
                                       c(0xFFFFF)))),
              store(v("a"), v("i"), 32, v("w")),
          })),
      ret(add(ld(v("a"), c(255)), ld(v("a"), c(100 + 32)))),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, WordVsLineGranularity) {
  // Neighbouring iterations touch different words of the same line: word
  // granularity sees no violations, line granularity sees many — results
  // stay identical either way (the ablation of Section 5.3's note).
  auto Build = [] {
    return makeMain(seq({
        assign("a", allocWords(c(256))),
        store(v("a"), c(0), c(3)),
        forLoop("i", c(1), lt(v("i"), c(256)), 1,
                store(v("a"), v("i"), add(v("i"), ld(v("a"), c(0))))),
        assign("s", c(0)),
        forLoop("i", c(0), lt(v("i"), c(256)), 1,
                assign("s", add(v("s"), ld(v("a"), v("i"))))),
        ret(v("s")),
    }));
  };
  sim::HydraConfig Word;
  Word.ViolationGrain = sim::ViolationGranularity::Word;
  sim::HydraConfig Line;
  Line.ViolationGrain = sim::ViolationGranularity::Line;
  ir::Module M1 = Build();
  ir::Module M2 = Build();
  auto RWord = runAllLoopsTls(M1, Word);
  auto RLine = runAllLoopsTls(M2, Line);
  EXPECT_EQ(RWord.Result.ReturnValue, RLine.Result.ReturnValue);
  EXPECT_GE(RLine.Totals.Violations, RWord.Totals.Violations);
}

TEST(TlsEngine, NestedCallInsideThreadWorks) {
  ProgramDef P;
  FuncDef Work;
  Work.Name = "work";
  Work.Params = {"x"};
  Work.Body = seq({
      assign("r", v("x")),
      forLoop("k", c(0), lt(v("k"), c(8)), 1,
              assign("r", band(add(mul(v("r"), c(31)), c(11)), c(0xFFFF)))),
      ret(v("r")),
  });
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              store(v("a"), v("i"), call("work", {v("i")}))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  });
  P.Functions.push_back(std::move(Work));
  P.Functions.push_back(std::move(Main));
  ir::Module M = front::lowerProgram(P);
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, MultipleInvocationsOfSameLoop) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(32))),
      assign("total", c(0)),
      forLoop("round", c(0), lt(v("round"), c(5)), 1,
              seq({
                  // Inner loop re-entered every round. The outer loop is
                  // rejected for selection here by nesting (both get
                  // selected in runAllLoopsTls, exercising nested-STL
                  // suppression inside the engine).
                  forLoop("i", c(0), lt(v("i"), c(32)), 1,
                          store(v("a"), v("i"),
                                add(v("round"), mul(v("i"), c(3))))),
                  assign("total", add(v("total"), ld(v("a"), c(31)))),
              })),
      ret(v("total")),
  }));
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, SyncLocksReduceRestartsOnCarriedChain) {
  // x = f(x) at the top of the body followed by heavy independent work:
  // with plain restarts the consumer speculates through x and restarts;
  // with Section 3.2's synchronization locks it waits for the producer's
  // store instead. Results must be identical; restarts must drop.
  auto Build = [] {
    return makeMain(seq({
        assign("a", allocWords(c(160))),
        assign("x", c(7)),
        forLoop("i", c(0), lt(v("i"), c(150)), 1,
                seq({
                    assign("x", band(add(mul(v("x"), c(33)), c(11)),
                                     c(0xFFFF))),
                    assign("w", add(v("x"), v("i"))),
                    forLoop("k", c(0), lt(v("k"), c(15)), 1,
                            assign("w", band(add(mul(v("w"), c(17)), c(5)),
                                             c(0xFFFFF)))),
                    store(v("a"), v("i"), v("w")),
                })),
        assign("s", v("x")),
        forLoop("i", c(0), lt(v("i"), c(150)), 1,
                assign("s", add(v("s"), ld(v("a"), v("i"))))),
        ret(v("s")),
    }));
  };
  sim::HydraConfig Restart;
  sim::HydraConfig Sync;
  Sync.SyncCarriedLocals = true;
  ir::Module M1 = Build();
  ir::Module M2 = Build();
  auto Seq = runModule(M1);
  auto RRestart = runAllLoopsTls(M1, Restart);
  auto RSync = runAllLoopsTls(M2, Sync);
  EXPECT_EQ(RRestart.Result.ReturnValue, Seq.ReturnValue);
  EXPECT_EQ(RSync.Result.ReturnValue, Seq.ReturnValue);
  EXPECT_GT(RSync.Totals.SyncStalls, 0u);
  EXPECT_LT(RSync.Totals.Restarts, RRestart.Totals.Restarts);
}

TEST(TlsEngine, SyncModeWholeSuiteStyleLoopStillCorrect) {
  // Break-exit plus carried local under sync mode: the waiter chain must
  // unwind when the producing thread exits the loop speculatively.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(128))),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              store(v("a"), v("i"), srem(mul(v("i"), c(41)), c(113)))),
      assign("x", c(0)),
      assign("found", c(-1)),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              seq({
                  assign("x", add(v("x"), ld(v("a"), v("i")))),
                  iff(gt(v("x"), c(2500)),
                      seq({assign("found", v("i")), brk()})),
              })),
      ret(add(v("found"), mul(v("x"), c(1000)))),
  }));
  sim::HydraConfig Sync;
  Sync.SyncCarriedLocals = true;
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M, Sync);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
}

TEST(TlsEngine, SelectedLoopInsideCalleeDispatches) {
  // A selected STL that lives in a helper function must be taken over by
  // the engine when the sequential machine reaches it at call depth > 1.
  ProgramDef P;
  FuncDef Fill;
  Fill.Name = "fill";
  Fill.Params = {"a", "n", "bias"};
  Fill.Body = seq({
      forLoop("i", c(0), lt(v("i"), v("n")), 1,
              seq({
                  assign("w", add(v("i"), v("bias"))),
                  forLoop("k", c(0), lt(v("k"), c(10)), 1,
                          assign("w", band(add(mul(v("w"), c(29)), c(3)),
                                           c(0xFFFFF)))),
                  store(v("a"), v("i"), v("w")),
              })),
      ret(),
  });
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("a", allocWords(c(128))),
      exprStmt(call("fill", {v("a"), c(128), c(7)})),
      exprStmt(call("fill", {v("a"), c(64), c(11)})),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(128)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  });
  P.Functions.push_back(std::move(Fill));
  P.Functions.push_back(std::move(Main));
  ir::Module M = front::lowerProgram(P);
  auto Seq = runModule(M);
  auto Tls = runAllLoopsTls(M);
  EXPECT_EQ(Tls.Result.ReturnValue, Seq.ReturnValue);
  // The callee's loop ran speculatively on both invocations.
  EXPECT_GT(Tls.Totals.Invocations, 2u);
  EXPECT_GT(Tls.Totals.CommittedThreads, 150u);
  EXPECT_LT(Tls.Result.Cycles, Seq.Cycles);
}
