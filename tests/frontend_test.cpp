//===- tests/frontend_test.cpp - DSL lowering + interpreter semantics ------==//
//
// Each test lowers a small structured program and executes it, checking
// the returned value — covering the frontend and the interpreter together.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::front;
using jrpm::testutil::evalMain;
using jrpm::testutil::makeMain;

TEST(Frontend, ArithmeticTree) {
  EXPECT_EQ(evalMain(seq({ret(add(mul(c(6), c(7)), c(0)))})), 42u);
  EXPECT_EQ(evalMain(seq({ret(sub(c(100), add(c(30), c(12))))})), 58u);
}

TEST(Frontend, IntegerOps) {
  EXPECT_EQ(evalMain(seq({ret(sdiv(c(-7), c(2)))})),
            static_cast<std::uint64_t>(-3)); // C/Java truncation
  EXPECT_EQ(evalMain(seq({ret(srem(c(-7), c(2)))})),
            static_cast<std::uint64_t>(-1));
  EXPECT_EQ(evalMain(seq({ret(shl(c(3), c(4)))})), 48u);
  EXPECT_EQ(evalMain(seq({ret(shr(c(-16), c(2)))})),
            static_cast<std::uint64_t>(-4)); // arithmetic shift
  EXPECT_EQ(evalMain(seq({ret(bxor(c(0xF0), c(0xFF)))})), 0x0Fu);
}

TEST(Frontend, Comparisons) {
  EXPECT_EQ(evalMain(seq({ret(lt(c(-5), c(3)))})), 1u);
  EXPECT_EQ(evalMain(seq({ret(ge(c(3), c(3)))})), 1u);
  EXPECT_EQ(evalMain(seq({ret(lnot(eq(c(1), c(2))))})), 1u);
}

TEST(Frontend, FloatingPoint) {
  EXPECT_EQ(evalMain(seq({ret(ftoi(fadd(cf(1.5), cf(2.25))))})), 3u);
  EXPECT_EQ(evalMain(seq({ret(ftoi(fmul(cf(1.5), cf(4.0))))})), 6u);
  EXPECT_EQ(evalMain(seq({ret(ftoi(fsqrt(cf(81.0))))})), 9u);
  EXPECT_EQ(evalMain(seq({ret(ftoi(fneg(cf(-3.0))))})), 3u);
  EXPECT_EQ(evalMain(seq({ret(flt(cf(1.0), cf(2.0)))})), 1u);
  EXPECT_EQ(evalMain(seq({ret(ftoi(fdiv(itof(c(10)), cf(4.0))))})), 2u);
}

TEST(Frontend, IfElse) {
  EXPECT_EQ(evalMain(seq({
                assign("x", c(10)),
                iffElse(gt(v("x"), c(5)), assign("r", c(1)),
                        assign("r", c(2))),
                ret(v("r")),
            })),
            1u);
  EXPECT_EQ(evalMain(seq({
                assign("x", c(3)),
                iff(gt(v("x"), c(5)), assign("x", c(0))),
                ret(v("x")),
            })),
            3u);
}

TEST(Frontend, ForLoopSumsRange) {
  EXPECT_EQ(evalMain(seq({
                assign("s", c(0)),
                forLoop("i", c(0), lt(v("i"), c(10)), 1,
                        assign("s", add(v("s"), v("i")))),
                ret(v("s")),
            })),
            45u);
}

TEST(Frontend, ForLoopNegativeStep) {
  EXPECT_EQ(evalMain(seq({
                assign("s", c(0)),
                forLoop("i", c(9), ge(v("i"), c(0)), -1,
                        assign("s", add(v("s"), v("i")))),
                ret(v("s")),
            })),
            45u);
}

TEST(Frontend, WhileAndDoWhile) {
  EXPECT_EQ(evalMain(seq({
                assign("n", c(100)),
                assign("steps", c(0)),
                whileLoop(gt(v("n"), c(1)),
                          seq({
                              assign("n", sdiv(v("n"), c(2))),
                              assign("steps", add(v("steps"), c(1))),
                          })),
                ret(v("steps")),
            })),
            6u);
  // A do/while body runs at least once even when the condition is false.
  EXPECT_EQ(evalMain(seq({
                assign("x", c(0)),
                doWhile(lt(v("x"), c(0)), assign("x", add(v("x"), c(1)))),
                ret(v("x")),
            })),
            1u);
}

TEST(Frontend, BreakAndContinue) {
  EXPECT_EQ(evalMain(seq({
                assign("s", c(0)),
                forLoop("i", c(0), lt(v("i"), c(100)), 1,
                        seq({
                            iff(eq(v("i"), c(5)), brk()),
                            assign("s", add(v("s"), v("i"))),
                        })),
                ret(v("s")),
            })),
            10u); // 0+1+2+3+4
  EXPECT_EQ(evalMain(seq({
                assign("s", c(0)),
                forLoop("i", c(0), lt(v("i"), c(10)), 1,
                        seq({
                            iff(eq(srem(v("i"), c(2)), c(0)), cont()),
                            assign("s", add(v("s"), v("i"))),
                        })),
                ret(v("s")),
            })),
            25u); // 1+3+5+7+9
}

TEST(Frontend, HeapLoadStore) {
  EXPECT_EQ(evalMain(seq({
                assign("a", allocWords(c(8))),
                store(v("a"), c(3), c(77)),
                store(v("a"), Ex(), 1, c(5)),
                ret(add(ld(v("a"), c(3)), ld(v("a"), Ex(), 1))),
            })),
            82u);
}

TEST(Frontend, CallsAndRecursionDepth) {
  ProgramDef P;
  FuncDef Fib;
  Fib.Name = "fib";
  Fib.Params = {"n"};
  Fib.Body = seq({
      iff(le(v("n"), c(1)), ret(v("n"))),
      ret(add(call("fib", {sub(v("n"), c(1))}),
              call("fib", {sub(v("n"), c(2))}))),
  });
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({ret(call("fib", {c(12)}))});
  P.Functions.push_back(std::move(Fib));
  P.Functions.push_back(std::move(Main));
  ir::Module M = front::lowerProgram(P);
  EXPECT_EQ(testutil::runModule(M).ReturnValue, 144u);
}

TEST(Frontend, NamedLocalsRecorded) {
  ir::Module M = makeMain(seq({
      assign("alpha", c(1)),
      assign("beta", add(v("alpha"), c(1))),
      ret(v("beta")),
  }));
  const auto &Named = M.Functions[M.EntryFunction].NamedLocals;
  bool HasAlpha = false, HasBeta = false;
  for (const auto &[Name, Reg] : Named) {
    HasAlpha |= Name == "alpha";
    HasBeta |= Name == "beta";
  }
  EXPECT_TRUE(HasAlpha);
  EXPECT_TRUE(HasBeta);
}

TEST(Frontend, InductorLowersToAddImm) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(4)), 1,
              assign("s", add(v("s"), v("i")))),
      ret(v("s")),
  }));
  // Some AddImm on identical src/dst registers must exist (the i++ step).
  bool FoundSelfAddImm = false;
  for (const auto &BB : M.Functions[0].Blocks)
    for (const auto &I : BB.Instructions)
      if (I.Op == ir::Opcode::AddImm && I.Dst == I.A && I.Imm == 1)
        FoundSelfAddImm = true;
  EXPECT_TRUE(FoundSelfAddImm);
}

TEST(Frontend, FallthroughReturnsZero) {
  EXPECT_EQ(evalMain(seq({assign("x", c(5))})), 0u);
}
