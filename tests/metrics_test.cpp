//===- tests/metrics_test.cpp - Instrumentation registry invariants --------==//
//
// The observability layer's correctness is defined by accounting
// identities, not golden numbers: every cycle the Hydra engine simulates
// must land in exactly one overhead bucket, every speculative thread must
// be resolved exactly once, percentiles must be monotone, counters
// monotonic across pipeline phases, and a trace replay must reproduce the
// live tracer's metrics bit-for-bit. These are checked over the entire
// Table 6 registry at both annotation levels, so any future change to the
// engine that leaks or double-counts a cycle fails here immediately.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "jrpm/Pipeline.h"
#include "metrics/Metrics.h"
#include "metrics/Timeline.h"
#include "sweep/SweepRunner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace jrpm;

namespace {

std::uint64_t counterValue(const metrics::Registry &R,
                           const std::string &Name) {
  auto It = R.counters().find(Name);
  return It == R.counters().end() ? 0 : It->second.value();
}

/// Json rendering of only the metrics whose name starts with \p Prefix —
/// the comparison key for live-vs-replay identity.
std::string dumpWithPrefix(const metrics::Registry &R,
                           const std::string &Prefix) {
  Json Out = Json::object();
  for (const auto &[Name, C] : R.counters())
    if (Name.rfind(Prefix, 0) == 0)
      Out["counters"][Name] = C.value();
  for (const auto &[Name, G] : R.gauges())
    if (Name.rfind(Prefix, 0) == 0)
      Out["gauges"][Name] = G.value();
  for (const auto &[Name, H] : R.histograms())
    if (Name.rfind(Prefix, 0) == 0)
      Out["histograms"][Name] = H.toJson();
  return Out.dump();
}

} // namespace

//===----------------------------------------------------------------------===//
// Primitive semantics
//===----------------------------------------------------------------------===//

TEST(MetricsPrimitives, HistogramPercentilesMonotoneAndBracketed) {
  metrics::Histogram H;
  // Values spanning several powers of two, including extremes.
  std::vector<std::uint64_t> Samples = {0,   1,    2,     3,      5,
                                        17,  100,  1000,  4096,   65535,
                                        1u << 20, (1ull << 40) + 17};
  for (std::uint64_t V : Samples)
    H.record(V);
  EXPECT_EQ(H.count(), Samples.size());
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), (1ull << 40) + 17);

  std::uint64_t Prev = 0;
  for (double P : {0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                   99.9, 100.0}) {
    std::uint64_t V = H.percentile(P);
    EXPECT_GE(V, Prev) << "percentile not monotone at p" << P;
    Prev = V;
  }
  // p100 is an upper bound for the max; p0 a lower-bucket bound for min.
  EXPECT_GE(H.percentile(100.0), H.max());
  EXPECT_LE(H.percentile(0.0), 1u);
}

TEST(MetricsPrimitives, HistogramMergeMatchesCombinedRecording) {
  metrics::Histogram A, B, Combined;
  for (std::uint64_t V = 0; V < 500; ++V) {
    (V % 2 ? A : B).record(V * V);
    Combined.record(V * V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Combined.count());
  EXPECT_EQ(A.sum(), Combined.sum());
  EXPECT_EQ(A.min(), Combined.min());
  EXPECT_EQ(A.max(), Combined.max());
  for (double P : {50.0, 95.0, 99.0})
    EXPECT_EQ(A.percentile(P), Combined.percentile(P));
  EXPECT_EQ(A.toJson().dump(), Combined.toJson().dump());
}

TEST(MetricsPrimitives, RegistryMergeAddsCountersAndPeaksGauges) {
  metrics::Registry A, B;
  A.counter("x").inc(3);
  B.counter("x").inc(4);
  B.counter("only_b").inc(1);
  A.gauge("peak").peak(7);
  B.gauge("peak").peak(5);
  A.merge(B);
  EXPECT_EQ(counterValue(A, "x"), 7u);
  EXPECT_EQ(counterValue(A, "only_b"), 1u);
  EXPECT_EQ(A.gauges().at("peak").value(), 7u);
}

TEST(MetricsPrimitives, RegistryJsonRoundTripsThroughParser) {
  metrics::Registry R;
  R.counter("a.b").inc(42);
  R.gauge("g").set(9);
  for (std::uint64_t V = 1; V <= 100; ++V)
    R.histogram("h").record(V);
  std::string Text = R.toJson().dump();
  Json Parsed;
  std::string Err;
  ASSERT_TRUE(Json::parse(Text, Parsed, &Err)) << Err;
  EXPECT_EQ(Parsed.dump(), Text);
  const Json *C = Parsed.find("counters");
  ASSERT_NE(C, nullptr);
  ASSERT_NE(C->find("a.b"), nullptr);
  EXPECT_EQ(C->find("a.b")->asUint(), 42u);
}

//===----------------------------------------------------------------------===//
// Whole-registry accounting identities
//===----------------------------------------------------------------------===//

TEST(MetricsInvariants, CycleBucketsAndThreadsExactOnAllWorkloads) {
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    for (jit::AnnotationLevel Level :
         {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized}) {
      SCOPED_TRACE(W.Name + (Level == jit::AnnotationLevel::Base
                                 ? " (base)"
                                 : " (optimized)"));
      metrics::Registry Reg;
      pipeline::PipelineConfig Cfg;
      Cfg.Level = Level;
      Cfg.ExtendedPcBinning = true;
      Cfg.Metrics = &Reg;
      pipeline::Jrpm J(W.Build(), Cfg);
      pipeline::PipelineResult P = J.runAll();

      // Identity 1: the six overhead buckets tile NumCores * SpecCycles
      // exactly — no cycle is lost or double-counted.
      std::uint64_t Buckets = counterValue(Reg, "spec.cycles.useful") +
                              counterValue(Reg, "spec.cycles.fork_commit") +
                              counterValue(Reg,
                                           "spec.cycles.violation_discard") +
                              counterValue(Reg, "spec.cycles.buffer_stall") +
                              counterValue(Reg, "spec.cycles.sync_stall") +
                              counterValue(Reg, "spec.cycles.idle");
      EXPECT_EQ(Buckets, counterValue(Reg, "spec.cycles.total"));

      // ...and the total matches the engine's own loop statistics.
      std::uint64_t SpecCycles = 0;
      for (const auto &[LoopId, S] : P.TlsLoopStats)
        SpecCycles += S.SpecCycles;
      EXPECT_EQ(counterValue(Reg, "spec.cycles.total"),
                std::uint64_t(Cfg.Hw.NumCores) * SpecCycles);

      // Identity 2: every spawned thread is resolved exactly once.
      EXPECT_EQ(counterValue(Reg, "spec.threads_started"),
                counterValue(Reg, "spec.threads_committed") +
                    counterValue(Reg, "spec.threads_violated") +
                    counterValue(Reg, "spec.threads_discarded"));

      // Cross-layer consistency: the tracer and interpreter exports agree
      // with the pipeline's own result object.
      EXPECT_EQ(counterValue(Reg, "interp.plain.cycles"), P.PlainRun.Cycles);
      EXPECT_EQ(counterValue(Reg, "interp.profiled.cycles"),
                P.ProfiledRun.Cycles);
      EXPECT_EQ(counterValue(Reg, "interp.tls.cycles"), P.TlsRun.Cycles);

      // Histograms cover exactly the committed threads / loop invocations.
      auto HistCount = [&](const char *Name) -> std::uint64_t {
        auto It = Reg.histograms().find(Name);
        return It == Reg.histograms().end() ? 0 : It->second.count();
      };
      EXPECT_EQ(HistCount("spec.thread_active_cycles"),
                counterValue(Reg, "spec.threads_committed"));
      EXPECT_EQ(HistCount("spec.invocation_cycles"),
                counterValue(Reg, "spec.invocations"));
    }
  }
}

TEST(MetricsInvariants, CountersNeverDecreaseAcrossPhases) {
  const workloads::Workload *W = workloads::findWorkload("fft");
  ASSERT_NE(W, nullptr);
  metrics::Registry Reg;
  pipeline::PipelineConfig Cfg;
  Cfg.Metrics = &Reg;
  pipeline::Jrpm J(W->Build(), Cfg);

  auto Snapshot = [&] {
    std::map<std::string, std::uint64_t> S;
    for (const auto &[Name, C] : Reg.counters())
      S[Name] = C.value();
    return S;
  };
  auto ExpectMonotone = [](const std::map<std::string, std::uint64_t> &Before,
                           const std::map<std::string, std::uint64_t> &After) {
    for (const auto &[Name, V] : Before) {
      auto It = After.find(Name);
      ASSERT_NE(It, After.end()) << Name << " vanished";
      EXPECT_GE(It->second, V) << Name << " decreased";
    }
  };

  std::map<std::string, std::uint64_t> S0 = Snapshot();
  J.runPlain();
  std::map<std::string, std::uint64_t> S1 = Snapshot();
  ExpectMonotone(S0, S1);
  pipeline::Jrpm::ProfileOutcome Prof = J.profileAndSelect();
  std::map<std::string, std::uint64_t> S2 = Snapshot();
  ExpectMonotone(S1, S2);
  J.runSpeculative(Prof.Selection);
  std::map<std::string, std::uint64_t> S3 = Snapshot();
  ExpectMonotone(S2, S3);
  EXPECT_GT(S3.size(), S1.size()); // each phase adds its namespace
}

TEST(MetricsInvariants, LiveVsReplayTracerMetricsBitIdentical) {
  const workloads::Workload *W = workloads::findWorkload("compress");
  ASSERT_NE(W, nullptr);
  testutil::ScopedTempDir Dir("jrpm-metrics-test");
  ASSERT_TRUE(Dir.valid());
  std::string TracePath = Dir.file("live.jtrace");

  metrics::Registry Live;
  pipeline::PipelineConfig Cfg;
  Cfg.ExtendedPcBinning = true;
  Cfg.WorkloadName = W->Name;
  Cfg.RecordTracePath = TracePath;
  Cfg.Metrics = &Live;
  pipeline::Jrpm J(W->Build(), Cfg);
  J.profileAndSelect();

  metrics::Registry Replayed;
  pipeline::PipelineConfig ReplayCfg;
  ReplayCfg.ExtendedPcBinning = true;
  ReplayCfg.Metrics = &Replayed;
  pipeline::selectFromTrace(TracePath, ReplayCfg);

  // The tracer's metrics are a pure function of the event stream, and the
  // replay re-drives the identical stream: tracer.* must match exactly.
  // (The replay additionally exports trace.events_replayed, and live adds
  // interp.profiled.*, so only the tracer namespace is comparable.)
  EXPECT_EQ(dumpWithPrefix(Live, "tracer."),
            dumpWithPrefix(Replayed, "tracer."));
  EXPECT_GT(counterValue(Replayed, "trace.events_replayed"), 0u);
}

//===----------------------------------------------------------------------===//
// Sweep merge determinism
//===----------------------------------------------------------------------===//

TEST(MetricsSweep, MergedMetricsIdenticalOn1And4Threads) {
  sweep::SweepPlan Plan;
  Plan.Workloads = {"BitOps", "Huffman", "NumHeapSort"};
  Plan.Levels = {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized};
  std::vector<sweep::SweepJob> Jobs;
  std::string Err;
  ASSERT_TRUE(Plan.expand(Jobs, &Err)) << Err;

  sweep::SweepReport R1 = sweep::runSweep(Jobs, 1);
  sweep::SweepReport R4 = sweep::runSweep(Jobs, 4);
  ASSERT_TRUE(R1.allOk());
  ASSERT_TRUE(R4.allOk());

  // Per-job registries land in preassigned slots and merge in plan order:
  // pool width must not influence a single byte of the export.
  EXPECT_EQ(sweep::mergedMetrics(R1).toJson().dump(),
            sweep::mergedMetrics(R4).toJson().dump());

  metrics::Registry Merged = sweep::mergedMetrics(R4);
  EXPECT_EQ(counterValue(Merged, "sweep.jobs"), Jobs.size());
  EXPECT_EQ(counterValue(Merged, "sweep.jobs_ok"), Jobs.size());
  // The merge is a straight sum of per-job counters.
  std::uint64_t PlainSum = 0;
  for (const sweep::SweepResult &S : R4.Results)
    PlainSum += counterValue(S.Metrics, "interp.plain.cycles");
  EXPECT_EQ(counterValue(Merged, "interp.plain.cycles"), PlainSum);
}
