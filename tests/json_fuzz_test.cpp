//===- tests/json_fuzz_test.cpp - Json::parse robustness fuzzing -----------==//
//
// The serve daemon feeds Json::parse bytes straight off untrusted sockets,
// so the parser must reject every malformed input with a typed error —
// never crash, hang, or recurse to stack overflow. This suite fuzzes the
// classic protocol attack surfaces deterministically (fixed xorshift
// seeds): truncation at every byte offset, single- and double-bit flips,
// random garbage, container depth bombs, and length-prefixed frame
// decoding over adversarial buffers. Run it under the JRPM_SANITIZE
// (ASan+UBSan) preset to turn latent memory errors into failures.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "support/Json.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

using namespace jrpm;

namespace {

/// Deterministic xorshift64* — the suite must not depend on rand().
struct Rng {
  std::uint64_t State;
  explicit Rng(std::uint64_t Seed) : State(Seed ? Seed : 1) {}
  std::uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 2685821657736338717ull;
  }
  std::uint32_t below(std::uint32_t N) {
    return static_cast<std::uint32_t>(next() % N);
  }
};

/// A representative document exercising every value kind the writer emits.
std::string sampleDoc() {
  Json Root = Json::object();
  Root["schema"] = "fuzz-sample-v1";
  Root["flag"] = true;
  Root["nil"] = Json();
  Root["int"] = std::int64_t(-42);
  Root["uint"] = std::uint64_t(18446744073709551615ull);
  Root["dbl"] = 0.30000000000000004;
  Root["text"] = std::string("quotes \" slashes \\ control \n\t end");
  Json Arr = Json::array();
  for (int I = 0; I < 4; ++I) {
    Json Inner = Json::object();
    Inner["i"] = I;
    Inner["name"] = "item-" + std::to_string(I);
    Arr.push(Inner);
  }
  Root["items"] = Arr;
  return Root.dump();
}

/// Parsing must either succeed or fail with a non-empty error — and never
/// crash. Returns whether it parsed.
bool parseSurvives(const std::string &Text) {
  Json Out;
  std::string Err;
  bool Ok = Json::parse(Text, Out, &Err);
  EXPECT_TRUE(Ok || !Err.empty()) << "failed parse with empty error";
  if (Ok) {
    // A successful parse must re-serialize without issue (round-trip
    // stability is the writer/parser contract).
    std::string Dumped = Out.dump();
    Json Again;
    EXPECT_TRUE(Json::parse(Dumped, Again, &Err)) << Err;
    EXPECT_EQ(Dumped, Again.dump());
  }
  return Ok;
}

TEST(JsonFuzz, TruncationAtEveryOffset) {
  std::string Doc = sampleDoc();
  ASSERT_TRUE(parseSurvives(Doc));
  // Every strict prefix must be handled; virtually all are malformed.
  for (std::size_t N = 0; N < Doc.size(); ++N)
    parseSurvives(Doc.substr(0, N));
}

TEST(JsonFuzz, SingleBitFlips) {
  std::string Doc = sampleDoc();
  for (std::size_t I = 0; I < Doc.size(); ++I)
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::string Mutated = Doc;
      Mutated[I] = static_cast<char>(Mutated[I] ^ (1 << Bit));
      parseSurvives(Mutated);
    }
}

TEST(JsonFuzz, RandomMultiByteCorruption) {
  std::string Doc = sampleDoc();
  Rng R(0x5eed5eed);
  for (int Round = 0; Round < 2000; ++Round) {
    std::string Mutated = Doc;
    int Edits = 1 + static_cast<int>(R.below(8));
    for (int E = 0; E < Edits; ++E)
      Mutated[R.below(static_cast<std::uint32_t>(Mutated.size()))] =
          static_cast<char>(R.next());
    parseSurvives(Mutated);
  }
}

TEST(JsonFuzz, PureGarbage) {
  Rng R(0xfeedface);
  for (int Round = 0; Round < 2000; ++Round) {
    std::string Garbage;
    std::size_t Len = R.below(96);
    for (std::size_t I = 0; I < Len; ++I)
      Garbage.push_back(static_cast<char>(R.next()));
    parseSurvives(Garbage);
  }
}

TEST(JsonFuzz, DepthBombIsRejectedNotOverflowed) {
  // At the limit: parses.
  std::string AtLimit(Json::MaxParseDepth, '[');
  AtLimit += "1";
  AtLimit.append(Json::MaxParseDepth, ']');
  Json Out;
  std::string Err;
  EXPECT_TRUE(Json::parse(AtLimit, Out, &Err)) << Err;

  // One past the limit: typed rejection.
  std::string Past(Json::MaxParseDepth + 1, '[');
  Past += "1";
  Past.append(Json::MaxParseDepth + 1, ']');
  EXPECT_FALSE(Json::parse(Past, Out, &Err));
  EXPECT_NE(Err.find("nesting"), std::string::npos) << Err;

  // A hostile bomb (far past any sane stack): rejected without crashing.
  std::string Bomb(1u << 20, '[');
  EXPECT_FALSE(Json::parse(Bomb, Out, &Err));

  // Object nesting counts against the same budget.
  std::string ObjBomb;
  for (int I = 0; I < Json::MaxParseDepth + 1; ++I)
    ObjBomb += "{\"k\":";
  ObjBomb += "1";
  ObjBomb.append(Json::MaxParseDepth + 1, '}');
  EXPECT_FALSE(Json::parse(ObjBomb, Out, &Err));
  EXPECT_NE(Err.find("nesting"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Protocol frames over adversarial buffers
//===----------------------------------------------------------------------===//

TEST(JsonFuzz, FrameDecodeNeverReadsPastBuffer) {
  Rng R(0xabcdef12);
  for (int Round = 0; Round < 4000; ++Round) {
    std::uint8_t Buf[64];
    std::size_t Len = R.below(sizeof(Buf) + 1);
    for (std::size_t I = 0; I < Len; ++I)
      Buf[I] = static_cast<std::uint8_t>(R.next());

    std::string Payload;
    std::size_t Consumed = 0;
    serve::FrameStatus S =
        serve::decodeFrame(Buf, Len, Consumed, Payload, /*MaxBytes=*/48);
    switch (S) {
    case serve::FrameStatus::Ok:
      EXPECT_LE(Consumed, Len);
      EXPECT_EQ(Consumed, 4 + Payload.size());
      break;
    case serve::FrameStatus::NeedMore:
    case serve::FrameStatus::Malformed:
    case serve::FrameStatus::Oversize:
      EXPECT_EQ(Consumed, 0u);
      break;
    }
  }
}

TEST(JsonFuzz, FrameThenParsePipeline) {
  // The daemon's actual input path: decode a frame, parse its payload.
  // Feed it corrupted frames of a real request document.
  Json Req = Json::object();
  Req["kind"] = "sweep";
  Json W = Json::array();
  W.push("BitOps");
  Req["workloads"] = W;
  std::string Frame = serve::encodeFrame(Req.dump());

  Rng R(0x0ddba11);
  for (int Round = 0; Round < 2000; ++Round) {
    std::string Mutated = Frame;
    Mutated[R.below(static_cast<std::uint32_t>(Mutated.size()))] =
        static_cast<char>(R.next());

    std::string Payload;
    std::size_t Consumed = 0;
    serve::FrameStatus S = serve::decodeFrame(
        reinterpret_cast<const std::uint8_t *>(Mutated.data()),
        Mutated.size(), Consumed, Payload);
    if (S == serve::FrameStatus::Ok)
      parseSurvives(Payload);
  }
}

} // namespace
