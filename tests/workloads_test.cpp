//===- tests/workloads_test.cpp - Full-suite integration tests -------------==//
//
// Parameterized over all 26 Table 6 benchmarks: the whole Jrpm pipeline
// must run, speculative execution must be bit-identical to sequential
// execution, and profiling overhead must stay within the paper's ballpark.
//
//===----------------------------------------------------------------------===//

#include "jrpm/Pipeline.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::pipeline;

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, PipelineRunsAndTlsMatchesSequential) {
  const workloads::Workload *W = workloads::findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  Jrpm J(W->Build(), PipelineConfig{});
  PipelineResult R = J.runAll();

  // Determinism of the sequential baseline.
  auto Again = J.runPlain();
  EXPECT_EQ(Again.Cycles, R.PlainRun.Cycles);
  EXPECT_EQ(Again.ReturnValue, R.PlainRun.ReturnValue);

  // TLS correctness: speculative execution preserves sequential semantics.
  EXPECT_EQ(R.TlsRun.ReturnValue, R.PlainRun.ReturnValue)
      << "speculative result diverged for " << W->Name;

  // TEST hardware profiling overhead stays mild (paper: 3-25%; we accept
  // up to 60% before calling it a regression).
  EXPECT_LT(R.profilingSlowdown(), 1.6) << W->Name;
  EXPECT_GE(R.profilingSlowdown(), 1.0) << W->Name;

  // The tracer must have seen every annotated loop entry it claims.
  EXPECT_LE(R.PeakBanksInUse, J.config().Hw.ComparatorBanks);

  // TLS never slows the program beyond mild overhead.
  EXPECT_GT(R.actualSpeedup(), 0.8) << W->Name;
}

TEST_P(WorkloadSuite, SelectionIsStableAcrossProfilingLevels) {
  const workloads::Workload *W = workloads::findWorkload(GetParam());
  PipelineConfig Base;
  Base.Level = jit::AnnotationLevel::Base;
  Jrpm J(W->Build(), Base);
  auto P = J.profileAndSelect();
  // Selected loops must be traced, non-rejected candidates.
  for (std::uint32_t L : P.Selection.SelectedLoops) {
    EXPECT_GT(P.Selection.Loops[L].Stats.Threads, 0u);
    EXPECT_FALSE(J.moduleAnalysis().candidate(L).Rejected);
  }
}

namespace {

std::vector<std::string> allNames() {
  std::vector<std::string> Names;
  for (const auto &W : workloads::allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Table6, WorkloadSuite,
                         ::testing::ValuesIn(allNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           std::string Name = I.param;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

#include "workloads/Builders.h"

TEST(DataSetSensitivity, SelectionMovesDownTheNestOnLargeInputs) {
  // Section 6.1: larger data sets overflow speculative state when
  // speculating high in a nest, pushing selection toward inner loops.
  auto AvgSelectedHeight = [](std::int64_t N) {
    pipeline::Jrpm J(workloads::buildAssignmentSized(N),
                     PipelineConfig{});
    auto P = J.profileAndSelect();
    double Sum = 0;
    std::uint32_t Count = 0;
    for (const auto &Rep : P.Selection.Loops) {
      if (!Rep.Selected || Rep.Coverage <= 0.005)
        continue;
      const auto &C = J.moduleAnalysis().candidate(Rep.LoopId);
      Sum += J.moduleAnalysis().func(C.FuncIndex).LI.heightOf(C.LoopIdx);
      ++Count;
    }
    return Count ? Sum / Count : 0.0;
  };
  EXPECT_GT(AvgSelectedHeight(51), AvgSelectedHeight(288));
}
