//===- tests/trace_fuzz_test.cpp - Reader robustness under corruption ------==//
//
// Bit-flips, truncations, splices, and garbage must all surface as typed
// trace::Error — never UB, a crash, or a silently-wrong analysis. The
// whole suite runs under -DJRPM_SANITIZE=ON in CI (scripts/ci_sanitize.sh),
// so any out-of-bounds access or overflow in the decoder is fatal here.
//
//===----------------------------------------------------------------------===//

#include "jrpm/Pipeline.h"
#include "support/Prng.h"
#include "trace/Replay.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <unistd.h>
#include <vector>

using namespace jrpm;

namespace {

std::string tmpPath(const std::string &Tag) {
  return "/tmp/jrpm-trace-fuzz-" +
         std::to_string(static_cast<long>(getpid())) + "-" + Tag + ".jtrace";
}

std::vector<std::uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(In)),
                                   std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<std::uint8_t> &B) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(B.data()),
            static_cast<std::streamsize>(B.size()));
}

/// Null sink: replay target that ignores everything.
class NullSink : public interp::TraceSink {
public:
  std::uint32_t onHeapLoad(std::uint32_t, std::uint64_t,
                           std::int32_t) override {
    return 0;
  }
  std::uint32_t onHeapStore(std::uint32_t, std::uint64_t,
                            std::int32_t) override {
    return 0;
  }
  std::uint32_t onLocalLoad(std::uint64_t, std::uint16_t, std::uint64_t,
                            std::int32_t) override {
    return 0;
  }
  std::uint32_t onLocalStore(std::uint64_t, std::uint16_t, std::uint64_t,
                             std::int32_t) override {
    return 0;
  }
  std::uint32_t onLoopStart(std::uint32_t, std::uint64_t,
                            std::uint64_t) override {
    return 0;
  }
  std::uint32_t onLoopIter(std::uint32_t, std::uint64_t) override {
    return 0;
  }
  std::uint32_t onLoopEnd(std::uint32_t, std::uint64_t) override {
    return 0;
  }
  void onReturn(std::uint64_t) override {}
};

/// Full strict read of a candidate file: header, O(1) footer, every event,
/// stream-end validation. Returns the ErrorKind when the reader rejected
/// the file, nullopt when it was accepted.
std::optional<trace::ErrorKind> strictRead(const std::string &Path) {
  try {
    trace::Reader R(Path);
    R.footer();
    NullSink Sink;
    trace::replay(R, Sink);
    return std::nullopt;
  } catch (const trace::Error &E) {
    return E.kind();
  }
}

/// Shared pristine capture for all corruption tests.
class TraceFuzz : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Path = new std::string(tmpPath("seed"));
    const workloads::Workload *W = workloads::findWorkload("BitOps");
    ASSERT_NE(W, nullptr);
    pipeline::PipelineConfig Cfg;
    Cfg.ExtendedPcBinning = true;
    Cfg.WorkloadName = W->Name;
    Cfg.RecordTracePath = *Path;
    pipeline::Jrpm J(W->Build(), Cfg);
    J.profileAndSelect();
    Pristine = new std::vector<std::uint8_t>(readFile(*Path));
    ASSERT_FALSE(Pristine->empty());
    ASSERT_FALSE(strictRead(*Path).has_value());
  }

  static void TearDownTestSuite() {
    std::remove(Path->c_str());
    delete Path;
    delete Pristine;
    Path = nullptr;
    Pristine = nullptr;
  }

  static std::string *Path;
  static std::vector<std::uint8_t> *Pristine;
};

std::string *TraceFuzz::Path = nullptr;
std::vector<std::uint8_t> *TraceFuzz::Pristine = nullptr;

} // namespace

TEST_F(TraceFuzz, EveryBitFlipIsDetected) {
  // CRC32 catches any single-bit payload error; framing fields are either
  // covered by a checksum, bounded against the file size, or cross-checked
  // against the footer. Sample byte offsets across the whole file plus an
  // exhaustive pass over the first and last 64 bytes (header/footer
  // framing, the hardest part to get right).
  std::string Mutant = tmpPath("bitflip");
  Prng Rng(0xF1D0F00Dull);
  std::vector<std::size_t> Offsets;
  for (std::size_t I = 0; I < 64 && I < Pristine->size(); ++I)
    Offsets.push_back(I);
  for (std::size_t I = 0; I < 64 && I < Pristine->size(); ++I)
    Offsets.push_back(Pristine->size() - 1 - I);
  for (int I = 0; I < 400; ++I)
    Offsets.push_back(
        static_cast<std::size_t>(Rng.nextBelow(Pristine->size())));

  for (std::size_t Off : Offsets) {
    std::vector<std::uint8_t> B = *Pristine;
    B[Off] ^= static_cast<std::uint8_t>(1u << Rng.nextBelow(8));
    writeFile(Mutant, B);
    std::optional<trace::ErrorKind> Err = strictRead(Mutant);
    EXPECT_TRUE(Err.has_value())
        << "bit flip at offset " << Off << " went undetected";
  }
  std::remove(Mutant.c_str());
}

TEST_F(TraceFuzz, EveryTruncationIsDetected) {
  std::string Mutant = tmpPath("trunc");
  Prng Rng(0x7256C471ull);
  std::vector<std::size_t> Lengths = {0, 1, 4, 7, 8, 11, 12, 19, 20};
  for (int I = 0; I < 200; ++I)
    Lengths.push_back(
        static_cast<std::size_t>(Rng.nextBelow(Pristine->size())));
  for (std::size_t I = 1; I <= 64 && I < Pristine->size(); ++I)
    Lengths.push_back(Pristine->size() - I);

  for (std::size_t Len : Lengths) {
    if (Len >= Pristine->size())
      continue;
    std::vector<std::uint8_t> B(Pristine->begin(),
                                Pristine->begin() + Len);
    writeFile(Mutant, B);
    std::optional<trace::ErrorKind> Err = strictRead(Mutant);
    EXPECT_TRUE(Err.has_value())
        << "truncation to " << Len << " bytes went undetected";
  }
  std::remove(Mutant.c_str());
}

TEST_F(TraceFuzz, SplicesAndStructuralDamageAreDetected) {
  std::string Mutant = tmpPath("splice");
  const std::vector<std::uint8_t> &P = *Pristine;

  // Duplicate a byte range in the middle (event counts then disagree with
  // the footer even if the bytes happen to decode).
  {
    std::vector<std::uint8_t> B = P;
    std::size_t Mid = B.size() / 2;
    B.insert(B.begin() + static_cast<std::ptrdiff_t>(Mid), P.begin() + 100,
             P.begin() + 200);
    writeFile(Mutant, B);
    EXPECT_TRUE(strictRead(Mutant).has_value()) << "spliced-in bytes";
  }
  // Delete a byte range in the middle.
  {
    std::vector<std::uint8_t> B = P;
    std::size_t Mid = B.size() / 2;
    B.erase(B.begin() + static_cast<std::ptrdiff_t>(Mid),
            B.begin() + static_cast<std::ptrdiff_t>(Mid + 64));
    writeFile(Mutant, B);
    EXPECT_TRUE(strictRead(Mutant).has_value()) << "deleted bytes";
  }
  // Swap two halves of the event region.
  {
    std::vector<std::uint8_t> B = P;
    std::size_t A = B.size() / 3, Z = 2 * B.size() / 3;
    for (std::size_t I = 0; A + I < Z - I && I < 512; ++I)
      std::swap(B[A + I], B[Z - I]);
    writeFile(Mutant, B);
    EXPECT_TRUE(strictRead(Mutant).has_value()) << "shuffled event region";
  }
  // Trailing garbage after a valid trace.
  {
    std::vector<std::uint8_t> B = P;
    B.insert(B.end(), {0xDE, 0xAD, 0xBE, 0xEF});
    writeFile(Mutant, B);
    EXPECT_TRUE(strictRead(Mutant).has_value()) << "trailing garbage";
  }
  // A different file type entirely.
  {
    std::vector<std::uint8_t> B(256, 0x41);
    writeFile(Mutant, B);
    std::optional<trace::ErrorKind> Err = strictRead(Mutant);
    ASSERT_TRUE(Err.has_value());
    EXPECT_EQ(*Err, trace::ErrorKind::BadMagic);
  }
  // Cross-trace splice: valid header from this trace, chunks from another
  // workload's trace.
  {
    std::string OtherPath = tmpPath("other");
    const workloads::Workload *W = workloads::findWorkload("Assignment");
    ASSERT_NE(W, nullptr);
    pipeline::PipelineConfig Cfg;
    Cfg.ExtendedPcBinning = true;
    Cfg.WorkloadName = W->Name;
    Cfg.RecordTracePath = OtherPath;
    pipeline::Jrpm J(W->Build(), Cfg);
    J.profileAndSelect();
    std::vector<std::uint8_t> Other = readFile(OtherPath);
    std::remove(OtherPath.c_str());

    // Keep this trace's header bytes, then graft the other trace's tail.
    ASSERT_GT(Other.size(), 512u);
    std::vector<std::uint8_t> B = Other;
    std::copy(P.begin(), P.begin() + 512, B.begin());
    writeFile(Mutant, B);
    EXPECT_TRUE(strictRead(Mutant).has_value()) << "cross-trace splice";
  }
  std::remove(Mutant.c_str());
}

TEST_F(TraceFuzz, ReplayOfCorruptTraceThrowsTypedErrorNotCrash) {
  // selectFromTrace (the full pipeline entry) must also surface Error.
  std::string Mutant = tmpPath("select");
  std::vector<std::uint8_t> B = *Pristine;
  B[B.size() / 2] ^= 0x10;
  writeFile(Mutant, B);
  trace::Reader R(Mutant); // header is intact; corruption is later
  EXPECT_THROW(
      { trace::selectFromTrace(R); }, trace::Error);
  std::remove(Mutant.c_str());
}

TEST_F(TraceFuzz, ErrorsCarryKindAndMessage) {
  std::string Mutant = tmpPath("kinds");
  // Version bump.
  {
    std::vector<std::uint8_t> B = *Pristine;
    B[8] = 0x7F;
    writeFile(Mutant, B);
    std::optional<trace::ErrorKind> Err = strictRead(Mutant);
    ASSERT_TRUE(Err.has_value());
    EXPECT_EQ(*Err, trace::ErrorKind::BadVersion);
  }
  // Missing file is an Io error with the path in the message.
  try {
    trace::Reader R("/nonexistent/no.jtrace");
    FAIL() << "open of missing file succeeded";
  } catch (const trace::Error &E) {
    EXPECT_EQ(E.kind(), trace::ErrorKind::Io);
    EXPECT_NE(std::string(E.what()).find("no.jtrace"), std::string::npos);
  }
  std::remove(Mutant.c_str());
}
