//===- tests/sweep_test.cpp - Sweep engine tests ---------------------------==//
//
// Covers the work-stealing pool, plan expansion (cartesian grid + dedup),
// failure isolation (a crashing job reports instead of killing the sweep),
// the soft per-job timeout, the determinism contract (same plan + seed on
// 1 thread and N threads renders byte-identical JSON), and the selection
// digest used as the conformance currency.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Json.h"
#include "sweep/Conformance.h"
#include "tracer/Selector.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace jrpm;
using namespace jrpm::sweep;

//===----------------------------------------------------------------------===//
// Work-stealing thread pool
//===----------------------------------------------------------------------===//

TEST(SweepThreadPool, ExecutesEveryTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 200; ++I)
    Pool.submit([&Count]() { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 200);
}

TEST(SweepThreadPool, NestedSubmitFromWorker) {
  // A running task may fan out further work; wait() must cover the
  // transitively submitted tasks too.
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I < 8; ++I)
    Pool.submit([&]() {
      Count.fetch_add(1, std::memory_order_relaxed);
      for (int J = 0; J < 4; ++J)
        Pool.submit(
            [&]() { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 8 + 8 * 4);
}

TEST(SweepThreadPool, ReusableAfterWait) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&]() { ++Count; });
  Pool.wait();
  Pool.submit([&]() { ++Count; });
  Pool.submit([&]() { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(SweepThreadPool, SingleThreadRunsEverything) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I < 50; ++I)
    Pool.submit([&]() { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 50);
}

TEST(SweepThreadPool, WaitWithNoWorkReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  Pool.wait();
}

//===----------------------------------------------------------------------===//
// Config points and plan expansion
//===----------------------------------------------------------------------===//

TEST(SweepPlanTest, ConfigPointCanonicalName) {
  ConfigPoint P;
  std::string Err;
  ASSERT_TRUE(parseConfigPoint("history=48,banks=2", P, &Err)) << Err;
  // Canonical name sorts knobs by key, whatever the spec order.
  EXPECT_EQ(P.name(), "banks=2,history=48");

  ConfigPoint Empty;
  ASSERT_TRUE(parseConfigPoint("default", Empty, &Err)) << Err;
  EXPECT_EQ(Empty.name(), "default");
  ASSERT_TRUE(parseConfigPoint("", Empty, &Err)) << Err;
  EXPECT_EQ(Empty.name(), "default");
}

TEST(SweepPlanTest, ConfigPointRejectsMalformedSpecs) {
  ConfigPoint P;
  std::string Err;
  EXPECT_FALSE(parseConfigPoint("banks", P, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseConfigPoint("banks=", P, &Err));
  EXPECT_FALSE(parseConfigPoint("banks=eight", P, &Err));
  EXPECT_FALSE(parseConfigPoint("=2", P, &Err));
}

TEST(SweepPlanTest, ConfigPointAppliesKnobs) {
  ConfigPoint P;
  std::string Err;
  ASSERT_TRUE(
      parseConfigPoint("banks=2,history=48,prefilter=1,oracle=1", P, &Err));
  pipeline::PipelineConfig Cfg;
  ASSERT_TRUE(P.apply(Cfg, &Err)) << Err;
  EXPECT_EQ(Cfg.Hw.ComparatorBanks, 2u);
  EXPECT_EQ(Cfg.Hw.HeapTimestampFifoLines, 48u);
  EXPECT_TRUE(Cfg.StaticPrefilter);
  EXPECT_TRUE(Cfg.AffineOracle);

  ConfigPoint Off;
  ASSERT_TRUE(parseConfigPoint("oracle=0", Off, &Err));
  pipeline::PipelineConfig Cfg2;
  Cfg2.AffineOracle = true;
  ASSERT_TRUE(Off.apply(Cfg2, &Err)) << Err;
  EXPECT_FALSE(Cfg2.AffineOracle);
}

TEST(SweepPlanTest, UnknownKnobFailsExpansion) {
  SweepPlan Plan;
  Plan.Workloads = {"Huffman"};
  Plan.Configs.push_back(ConfigPoint{{{"warp-drive", 9}}});
  std::vector<SweepJob> Jobs;
  std::string Err;
  EXPECT_FALSE(Plan.expand(Jobs, &Err));
  EXPECT_NE(Err.find("warp-drive"), std::string::npos);
}

TEST(SweepPlanTest, CartesianExpansionOrderAndIndices) {
  SweepPlan Plan;
  Plan.Workloads = {"fft", "Huffman"};
  Plan.Levels = {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized};
  ConfigPoint Banks;
  std::string Err;
  ASSERT_TRUE(parseConfigPoint("banks=2", Banks, &Err));
  Plan.Configs = {ConfigPoint{}, Banks};

  std::vector<SweepJob> Jobs;
  ASSERT_TRUE(Plan.expand(Jobs, &Err)) << Err;
  ASSERT_EQ(Jobs.size(), 2u * 2u * 2u);
  // Workload major, level middle, config minor; indices sequential.
  EXPECT_EQ(Jobs[0].Workload, "fft");
  EXPECT_EQ(Jobs[0].Level, jit::AnnotationLevel::Base);
  EXPECT_EQ(Jobs[0].ConfigName, "default");
  EXPECT_EQ(Jobs[1].ConfigName, "banks=2");
  EXPECT_EQ(Jobs[2].Level, jit::AnnotationLevel::Optimized);
  EXPECT_EQ(Jobs[4].Workload, "Huffman");
  for (std::size_t I = 0; I < Jobs.size(); ++I)
    EXPECT_EQ(Jobs[I].Index, static_cast<std::uint32_t>(I));
  // The banks knob landed in the job's resolved config.
  EXPECT_EQ(Jobs[1].Cfg.Hw.ComparatorBanks, 2u);
  EXPECT_NE(Jobs[0].Cfg.Hw.ComparatorBanks, 2u);
}

TEST(SweepPlanTest, ExactDuplicatesRemoved) {
  SweepPlan Plan;
  Plan.Workloads = {"fft", "fft"};
  ConfigPoint A, B;
  std::string Err;
  // Same canonical point spelled in two orders: one survives.
  ASSERT_TRUE(parseConfigPoint("banks=2,history=48", A, &Err));
  ASSERT_TRUE(parseConfigPoint("history=48,banks=2", B, &Err));
  Plan.Configs = {A, B};
  std::vector<SweepJob> Jobs;
  ASSERT_TRUE(Plan.expand(Jobs, &Err)) << Err;
  EXPECT_EQ(Jobs.size(), 1u);
}

TEST(SweepPlanTest, EmptyDimensionsGetDefaults) {
  SweepPlan Plan;
  Plan.Workloads = {"fft"};
  std::vector<SweepJob> Jobs;
  std::string Err;
  ASSERT_TRUE(Plan.expand(Jobs, &Err)) << Err;
  ASSERT_EQ(Jobs.size(), 1u);
  EXPECT_EQ(Jobs[0].Level, jit::AnnotationLevel::Optimized);
  EXPECT_EQ(Jobs[0].ConfigName, "default");
}

TEST(SweepPlanTest, EmptyWorkloadsSelectWholeRegistry) {
  SweepPlan Plan;
  std::vector<SweepJob> Jobs;
  std::string Err;
  ASSERT_TRUE(Plan.expand(Jobs, &Err)) << Err;
  EXPECT_EQ(Jobs.size(), workloads::allWorkloads().size());
}

TEST(SweepPlanTest, ConformancePlanCoversBothLevelsAndGrid) {
  SweepPlan Plan = conformancePlan(defaultConformanceGrid(), {"fft"});
  std::vector<SweepJob> Jobs;
  std::string Err;
  ASSERT_TRUE(Plan.expand(Jobs, &Err)) << Err;
  // 1 workload x 2 levels x >=3 grid points.
  EXPECT_GE(defaultConformanceGrid().size(), 3u);
  EXPECT_EQ(Jobs.size(), 2 * defaultConformanceGrid().size());
  for (const SweepJob &J : Jobs)
    EXPECT_EQ(J.Mode, JobMode::Conformance);
}

//===----------------------------------------------------------------------===//
// Running sweeps: isolation, timeout, determinism
//===----------------------------------------------------------------------===//

namespace {

std::vector<SweepJob> expandOrDie(const SweepPlan &Plan) {
  std::vector<SweepJob> Jobs;
  std::string Err;
  EXPECT_TRUE(Plan.expand(Jobs, &Err)) << Err;
  return Jobs;
}

} // namespace

TEST(SweepRunnerTest, FailedJobIsIsolatedFromSiblings) {
  SweepPlan Plan;
  Plan.Workloads = {"fft", "no_such_workload", "Huffman"};
  SweepReport Report = runSweep(expandOrDie(Plan), 2);
  ASSERT_EQ(Report.Results.size(), 3u);
  EXPECT_EQ(Report.OkCount, 2u);
  EXPECT_EQ(Report.FailedCount, 1u);
  EXPECT_FALSE(Report.allOk());
  // The bad job carries an error message; the siblings completed normally.
  EXPECT_EQ(Report.Results[0].Status, JobStatus::Ok);
  EXPECT_EQ(Report.Results[1].Status, JobStatus::Failed);
  EXPECT_NE(Report.Results[1].Error.find("no_such_workload"),
            std::string::npos);
  EXPECT_EQ(Report.Results[2].Status, JobStatus::Ok);
  EXPECT_GT(Report.Results[2].PlainCycles, 0u);
}

TEST(SweepRunnerTest, SoftTimeoutReportsWithoutKilling) {
  // The simulator has no preemption point, so an over-budget job completes
  // and is then reported as timed out; its measurements stay valid.
  SweepPlan Plan;
  Plan.Workloads = {"Huffman"};
  Plan.TimeoutMs = 1; // a full pipeline run takes far longer than 1 ms
  SweepReport Report = runSweep(expandOrDie(Plan), 1);
  ASSERT_EQ(Report.Results.size(), 1u);
  EXPECT_EQ(Report.Results[0].Status, JobStatus::TimedOut);
  EXPECT_EQ(Report.TimedOutCount, 1u);
  EXPECT_GT(Report.Results[0].PlainCycles, 0u);
  EXPECT_GT(Report.Results[0].WallMs, 0.0);
}

TEST(SweepRunnerTest, OneAndManyThreadsRenderIdenticalJson) {
  SweepPlan Plan;
  Plan.Workloads = {"fft", "Huffman", "BitOps"};
  Plan.Levels = {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized};
  Plan.Seed = 42;
  std::vector<SweepJob> Jobs = expandOrDie(Plan);

  SweepReport R1 = runSweep(Jobs, 1);
  SweepReport R4 = runSweep(Jobs, 4);
  R1.Seed = R4.Seed = Plan.Seed;
  EXPECT_EQ(R1.OkCount, R4.OkCount);

  std::string J1 = reportToJson(R1, /*IncludeTimings=*/false).dump();
  std::string J4 = reportToJson(R4, /*IncludeTimings=*/false).dump();
  EXPECT_EQ(J1, J4) << "sweep JSON must not depend on the pool width";

  // With timings the documents legitimately differ (wall-clock, width) —
  // guard that the deterministic view really strips them.
  EXPECT_EQ(J1.find("wall_ms"), std::string::npos);
  EXPECT_EQ(J1.find("threads"), std::string::npos);
  EXPECT_NE(reportToJson(R4, true).dump().find("wall_ms"),
            std::string::npos);
}

TEST(SweepRunnerTest, ConformanceJobChecksReplayDigest) {
  SweepPlan Plan = conformancePlan(defaultConformanceGrid(), {"fft"});
  SweepReport Report = runSweep(expandOrDie(Plan), 2);
  EXPECT_TRUE(Report.allOk());
  for (const SweepResult &R : Report.Results) {
    EXPECT_EQ(R.Status, JobStatus::Ok);
    EXPECT_EQ(R.SelectionDigest, R.ReplayDigest);
    EXPECT_NE(R.SelectionDigest, 0u);
  }
}

TEST(SweepRunnerTest, WriteReportIsAtomicAndParsesBack) {
  SweepPlan Plan;
  Plan.Workloads = {"BitOps"};
  SweepReport Report = runSweep(expandOrDie(Plan), 1);
  testutil::ScopedTempDir Dir("jrpm-sweep-test");
  ASSERT_TRUE(Dir.valid());
  std::string Path = Dir.file("report.json");
  std::string Err;
  ASSERT_TRUE(writeReport(Report, Path, /*IncludeTimings=*/false, &Err))
      << Err;
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), reportToJson(Report, false).dump());
  // No temporary left behind next to the target.
  EXPECT_EQ(std::remove(Path.c_str()), 0);
  EXPECT_NE(Buf.str().find("\"schema\": \"jrpm-sweep-v1\""),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Selection digest
//===----------------------------------------------------------------------===//

TEST(SweepDigestTest, DigestTracksEveryField) {
  tracer::SelectionResult R;
  R.ProgramCycles = 1000;
  R.SerialCycles = 250.0;
  R.PredictedCycles = 600.0;
  R.PredictedSpeedup = 1.66;
  tracer::StlReport Loop;
  Loop.LoopId = 3;
  Loop.Selected = true;
  Loop.Coverage = 0.75;
  R.Loops.push_back(Loop);
  R.SelectedLoops = {3};

  std::uint64_t D = tracer::selectionDigest(R);
  EXPECT_EQ(D, tracer::selectionDigest(R)) << "digest must be pure";

  tracer::SelectionResult Flipped = R;
  Flipped.Loops[0].Selected = false;
  EXPECT_NE(tracer::selectionDigest(Flipped), D);

  tracer::SelectionResult Shifted = R;
  Shifted.Loops[0].Coverage = 0.750000001;
  EXPECT_NE(tracer::selectionDigest(Shifted), D)
      << "doubles are hashed by bit pattern";
}

//===----------------------------------------------------------------------===//
// Deterministic JSON rendering
//===----------------------------------------------------------------------===//

TEST(SweepJsonTest, ObjectKeysAlwaysSorted) {
  Json J = Json::object();
  J["zeta"] = 1;
  J["alpha"] = 2;
  J["mid"] = Json::array();
  J["mid"].push(Json(std::uint64_t(7)));
  std::string S = J.dump();
  EXPECT_LT(S.find("alpha"), S.find("mid"));
  EXPECT_LT(S.find("mid"), S.find("zeta"));
}

TEST(SweepJsonTest, DoublesRoundTripBitExactly) {
  double V = 1.0 / 3.0;
  Json J = Json::object();
  J["v"] = V;
  std::string S = J.dump();
  std::size_t Colon = S.find(": ");
  ASSERT_NE(Colon, std::string::npos);
  double Back = std::strtod(S.c_str() + Colon + 2, nullptr);
  EXPECT_EQ(Back, V);
}

TEST(SweepJsonTest, StringsEscaped) {
  EXPECT_EQ(jsonEscape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}
