//===- tests/support_test.cpp - Support library unit tests -----------------==//

#include "support/BitVector.h"
#include "support/Format.h"
#include "support/Prng.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace jrpm;

TEST(Format, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(formatString("%s", ""), "");
  // Long output must not truncate.
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()), Long);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(98304000), "98,304,000");
  EXPECT_EQ(withCommas(-1234567), "-1,234,567");
}

TEST(Format, AsPercent) {
  EXPECT_EQ(asPercent(0.8491), "84.91%");
  EXPECT_EQ(asPercent(0.0028), "0.28%");
  EXPECT_EQ(asPercent(1.0, 0), "100%");
}

TEST(Format, AsKiloCycles) {
  EXPECT_EQ(asKiloCycles(18941000), "18941K");
  EXPECT_EQ(asKiloCycles(18941499), "18941K");
  EXPECT_EQ(asKiloCycles(18941500), "18942K");
  EXPECT_EQ(asKiloCycles(0), "0K");
}

TEST(Prng, DeterministicAcrossInstances) {
  Prng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, SeedZeroIsValid) {
  Prng P(0);
  EXPECT_NE(P.next(), 0u);
}

TEST(Prng, BoundsRespected) {
  Prng P(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(P.nextBelow(17), 17u);
    double D = P.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(BitVector, SetTestReset) {
  BitVector B(130);
  EXPECT_FALSE(B.test(0));
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_EQ(B.count(), 3u);
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
}

TEST(BitVector, UnionAndSubtract) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(65);
  B.set(2);
  B.set(65);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_TRUE(A.test(65));
  // Union with a subset changes nothing.
  EXPECT_FALSE(A.unionWith(B));
  A.subtract(B);
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
  EXPECT_FALSE(A.test(65));
}

TEST(BitVector, Equality) {
  BitVector A(10), B(10);
  EXPECT_TRUE(A == B);
  A.set(3);
  EXPECT_FALSE(A == B);
  B.set(3);
  EXPECT_TRUE(A == B);
}

TEST(RunningStat, Accumulates) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  S.addSample(2.0);
  S.addSample(4.0);
  S.addSample(6.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 6.0);
  S.reset();
  EXPECT_EQ(S.count(), 0u);
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"a", "1"});
  T.addSeparator();
  T.addRow({"long-name", "23"});
  // Rendering must not crash and should handle missing cells.
  T.addRow({"only-one"});
  FILE *Null = fopen("/dev/null", "w");
  ASSERT_NE(Null, nullptr);
  T.print(Null);
  fclose(Null);
}
