//===- tests/memdep_test.cpp - Memory dependence analysis unit tests -------==//
//
// Hand-built loops with known carried dependences exercise the static
// layer: DefUseChains, AliasClasses, the per-loop RAW/WAW/May
// classification, the serial-recurrence detector, and the candidate
// pre-filter built on top of it.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "analysis/MemDep.h"
#include "ir/Opcode.h"
#include "jrpm/Pipeline.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::analysis;
using namespace jrpm::front;
using jrpm::testutil::makeMain;

namespace {

const ir::Function &mainFunc(const ir::Module &M) {
  return M.Functions[M.EntryFunction];
}

std::uint16_t localReg(const ir::Function &F, const std::string &Name) {
  for (const auto &[N, Reg] : F.NamedLocals)
    if (N == Name)
      return Reg;
  ADD_FAILURE() << "no local named " << Name;
  return ir::NoReg;
}

/// Finds the first instruction with opcode \p Op; returns {block, index}.
std::pair<std::uint32_t, std::uint32_t> findOp(const ir::Function &F,
                                               ir::Opcode Op) {
  for (std::uint32_t B = 0; B < F.numBlocks(); ++B)
    for (std::uint32_t I = 0; I < F.Blocks[B].Instructions.size(); ++I)
      if (F.Blocks[B].Instructions[I].Op == Op)
        return {B, I};
  ADD_FAILURE() << "opcode not found";
  return {0, 0};
}

/// The memory dependence summary of the single loop in main().
const LoopMemDep &singleLoopDep(const ModuleAnalysis &MA) {
  const FunctionAnalysis &FA = MA.func(0);
  EXPECT_EQ(FA.LI.loops().size(), 1u);
  return FA.MemDep->loopDep(0);
}

/// while (heap[p] < bound) { ...; heap[p] = heap[p] + 1; ... }
/// The canonical serial memory recurrence: the header reloads the exact
/// cell the latch stored, a handful of cycles earlier.
St serialRecurrenceLoop(St ExtraAfterStore = St()) {
  std::vector<St> Body;
  Body.push_back(store(v("p"), Ex(), 0, add(ld(v("p")), c(1))));
  if (ExtraAfterStore.valid())
    Body.push_back(std::move(ExtraAfterStore));
  return seq({
      assign("p", allocWords(c(8))),
      store(v("p"), Ex(), 0, c(0)),
      whileLoop(lt(ld(v("p")), c(50)), seq(std::move(Body))),
      ret(ld(v("p"))),
  });
}

} // namespace

//===----------------------------------------------------------------------===//
// DefUseChains
//===----------------------------------------------------------------------===//

TEST(DefUseChains, StraightLineRedefinitionKills) {
  ir::Module M = makeMain(seq({
      assign("x", c(1)),
      assign("x", c(2)),
      ret(v("x")),
  }));
  const ir::Function &F = mainFunc(M);
  DefUseChains DU(F);
  auto [RB, RI] = findOp(F, ir::Opcode::Ret);
  std::uint16_t X = localReg(F, "x");
  auto Defs = DU.reachingDefs(RB, RI, X);
  ASSERT_EQ(Defs.size(), 1u);
  // The surviving definition is the later one.
  const DefSite &S = DU.defSites()[Defs[0]];
  EXPECT_EQ(S.Reg, X);
  EXPECT_FALSE(DU.mayReadParam(RB, RI, X));
}

TEST(DefUseChains, DiamondMergesBothDefinitions) {
  ir::Module M = makeMain(seq({
      assign("x", c(1)),
      iffElse(v("x"), assign("x", c(2)), assign("x", c(3))),
      ret(v("x")),
  }));
  const ir::Function &F = mainFunc(M);
  DefUseChains DU(F);
  auto [RB, RI] = findOp(F, ir::Opcode::Ret);
  std::uint16_t X = localReg(F, "x");
  // Both branch arms redefine x; the entry definition is dead at the ret.
  EXPECT_EQ(DU.reachingDefs(RB, RI, X).size(), 2u);
  EXPECT_FALSE(DU.mayReadParam(RB, RI, X));
}

TEST(DefUseChains, LoopCarriedDefinitionReachesHeaderUse) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(4)), 1,
              assign("s", add(v("s"), v("i")))),
      ret(v("s")),
  }));
  const ir::Function &F = mainFunc(M);
  DefUseChains DU(F);
  auto [RB, RI] = findOp(F, ir::Opcode::Ret);
  // Both the init and the in-loop definition can flow out of the loop.
  EXPECT_EQ(DU.reachingDefs(RB, RI, localReg(F, "s")).size(), 2u);
}

//===----------------------------------------------------------------------===//
// AliasClasses
//===----------------------------------------------------------------------===//

TEST(AliasClasses, DistinctAllocationSitesAreDisjoint) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(16))),
      assign("b", allocWords(c(16))),
      assign("d", add(v("a"), c(4))), // derived pointer into a
      store(v("a"), Ex(), c(1)),
      store(v("b"), Ex(), c(2)),
      ret(ld(v("d"))),
  }));
  const ir::Function &F = mainFunc(M);
  AliasClasses AC(F);
  std::uint16_t A = localReg(F, "a"), B = localReg(F, "b"),
                D = localReg(F, "d");
  EXPECT_TRUE(AC.addressSet(A, ir::NoReg)
                  .disjointFrom(AC.addressSet(B, ir::NoReg)));
  // A derived pointer shares its base allocation's class.
  EXPECT_FALSE(AC.addressSet(D, ir::NoReg)
                   .disjointFrom(AC.addressSet(A, ir::NoReg)));
  EXPECT_TRUE(AC.addressSet(D, ir::NoReg)
                  .disjointFrom(AC.addressSet(B, ir::NoReg)));
}

//===----------------------------------------------------------------------===//
// Loop dependence classification
//===----------------------------------------------------------------------===//

TEST(MemDep, DisjointArraysAreProvablyParallel) {
  // a[i] = b[i]: reads and writes never touch the same allocation.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(16))),
      assign("b", allocWords(c(16))),
      forLoop("i", c(0), lt(v("i"), c(16)), 1,
              store(v("a"), v("i"), ld(v("b"), v("i")))),
      ret(ld(v("a"), Ex(), 3)),
  }));
  ModuleAnalysis MA(M);
  const LoopMemDep &MD = singleLoopDep(MA);
  EXPECT_EQ(MD.NumLoads, 1u);
  EXPECT_EQ(MD.NumStores, 1u);
  EXPECT_EQ(MD.NumRaw, 0u);
  EXPECT_EQ(MD.NumMay, 0u);
  EXPECT_EQ(MD.IndependentPairs, 1u);
  EXPECT_TRUE(MD.ProvablyParallel);
  EXPECT_FALSE(MD.Serial.Found);
}

TEST(MemDep, SameIndexSameIterationIsIndependent) {
  // a[i] = a[i] + 1: the load and store hit the same cell only within one
  // iteration; both run before the inductor update, so no carried dep.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(16))),
      forLoop("i", c(0), lt(v("i"), c(16)), 1,
              store(v("a"), v("i"), add(ld(v("a"), v("i")), c(1)))),
      ret(ld(v("a"), Ex(), 3)),
  }));
  ModuleAnalysis MA(M);
  const LoopMemDep &MD = singleLoopDep(MA);
  EXPECT_EQ(MD.NumRaw, 0u);
  EXPECT_EQ(MD.NumMay, 0u);
  EXPECT_EQ(MD.IndependentPairs, 1u);
  EXPECT_TRUE(MD.ProvablyParallel);
}

TEST(MemDep, OffsetGapGivesCarriedDistance) {
  // a[i+1] = a[i]: classic flow dependence at distance 1.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(20))),
      forLoop("i", c(0), lt(v("i"), c(16)), 1,
              store(v("a"), v("i"), 1, ld(v("a"), v("i"), 0))),
      ret(ld(v("a"), Ex(), 8)),
  }));
  ModuleAnalysis MA(M);
  const LoopMemDep &MD = singleLoopDep(MA);
  ASSERT_EQ(MD.NumRaw, 1u);
  EXPECT_FALSE(MD.ProvablyParallel);
  ASSERT_FALSE(MD.Carried.empty());
  const CarriedDep &D = MD.Carried.front();
  EXPECT_EQ(D.Kind, DepKind::Raw);
  EXPECT_EQ(D.Distance, 1);
  EXPECT_TRUE(D.Src.IsStore);
  EXPECT_FALSE(D.Dst.IsStore);
}

TEST(MemDep, StrideSkipsOddOffsets) {
  // step 2 with an offset gap of 1: the two address lattices interleave
  // and never collide.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(20))),
      forLoop("i", c(0), lt(v("i"), c(16)), 2,
              store(v("a"), v("i"), 1, ld(v("a"), v("i"), 0))),
      ret(ld(v("a"), Ex(), 8)),
  }));
  ModuleAnalysis MA(M);
  const LoopMemDep &MD = singleLoopDep(MA);
  EXPECT_EQ(MD.NumRaw, 0u);
  EXPECT_EQ(MD.IndependentPairs, 1u);
  EXPECT_TRUE(MD.ProvablyParallel);
}

TEST(MemDep, FixedCellStoresAreCarried) {
  // heap[p] accumulates across iterations: carried RAW on a fixed cell.
  ir::Module M = makeMain(seq({
      assign("p", allocWords(c(4))),
      store(v("p"), Ex(), c(0)),
      forLoop("i", c(0), lt(v("i"), c(8)), 1,
              store(v("p"), Ex(), add(ld(v("p")), v("i")))),
      ret(ld(v("p"))),
  }));
  ModuleAnalysis MA(M);
  const LoopMemDep &MD = singleLoopDep(MA);
  EXPECT_GE(MD.NumRaw, 1u);
  EXPECT_FALSE(MD.ProvablyParallel);
}

//===----------------------------------------------------------------------===//
// Serial recurrence detection and the pre-filter
//===----------------------------------------------------------------------===//

TEST(MemDep, DetectsSerialRecurrence) {
  ir::Module M = makeMain(serialRecurrenceLoop());
  ModuleAnalysis MA(M);
  const LoopMemDep &MD = singleLoopDep(MA);
  ASSERT_TRUE(MD.Serial.Found);
  // The tiny window: store, branch, eoi on the latch side plus the reload
  // at the top of the header. Must stay within the default forwarding
  // budget and must never be zero.
  EXPECT_GT(MD.Serial.WindowCycles, 0u);
  EXPECT_LE(MD.Serial.WindowCycles, 10u);
  EXPECT_GE(MD.NumRaw, 1u);
  // The recurrence names the header reload and a latch store of the cell.
  const ir::Function &F = mainFunc(M);
  const FunctionAnalysis &FA = MA.func(0);
  EXPECT_EQ(MD.Serial.LoadBlock, FA.LI.loops()[0].Header);
  const ir::Instruction &Ld =
      F.Blocks[MD.Serial.LoadBlock].Instructions[MD.Serial.LoadIndex];
  const ir::Instruction &St =
      F.Blocks[MD.Serial.StoreBlock].Instructions[MD.Serial.StoreIndex];
  EXPECT_EQ(Ld.Op, ir::Opcode::Load);
  EXPECT_EQ(St.Op, ir::Opcode::Store);
  EXPECT_EQ(Ld.Imm, St.Imm);
}

TEST(MemDep, ForLoopLatchHasNoStoreSoNoRecurrence) {
  // The same accumulation through a for-loop: the latch is the dedicated
  // step block (no store), so the conservative shape does not apply.
  ir::Module M = makeMain(seq({
      assign("p", allocWords(c(4))),
      store(v("p"), Ex(), c(0)),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              store(v("p"), Ex(), add(ld(v("p")), c(1)))),
      ret(ld(v("p"))),
  }));
  ModuleAnalysis MA(M);
  EXPECT_FALSE(singleLoopDep(MA).Serial.Found);
}

TEST(Prefilter, RejectsSerialRecurrence) {
  ir::Module M = makeMain(serialRecurrenceLoop());

  // Default options: the optimistic policy keeps the loop.
  ModuleAnalysis Optimistic(M);
  ASSERT_EQ(Optimistic.candidates().size(), 1u);
  EXPECT_FALSE(Optimistic.candidates()[0].Rejected);

  AnalysisOptions Opts;
  Opts.StaticPrefilter = true;
  ModuleAnalysis MA(M, Opts);
  ASSERT_EQ(MA.candidates().size(), 1u);
  const CandidateStl &C = MA.candidates()[0];
  EXPECT_TRUE(C.Rejected);
  EXPECT_EQ(C.Kind, RejectKind::SerialMemoryRecurrence);
  EXPECT_NE(C.RejectReason.find("serial memory recurrence"),
            std::string::npos);
  EXPECT_STREQ(rejectKindName(C.Kind), "serial-memory");
}

TEST(Prefilter, KeepsParallelLoop) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(16))),
      assign("b", allocWords(c(16))),
      forLoop("i", c(0), lt(v("i"), c(16)), 1,
              store(v("a"), v("i"), ld(v("b"), v("i")))),
      ret(ld(v("a"), Ex(), 3)),
  }));
  AnalysisOptions Opts;
  Opts.StaticPrefilter = true;
  ModuleAnalysis MA(M, Opts);
  ASSERT_EQ(MA.candidates().size(), 1u);
  EXPECT_FALSE(MA.candidates()[0].Rejected);
}

TEST(Prefilter, BudgetGatesTheRejection) {
  // Work after the latch store widens the store-to-reload window past the
  // default forwarding budget: the arc could win, so the loop survives.
  St Extra = store(v("p"), Ex(), 1, sdiv(ld(v("p"), Ex(), 1), c(3)));
  ir::Module M = makeMain(serialRecurrenceLoop(std::move(Extra)));

  ModuleAnalysis Plain(M);
  const LoopMemDep &MD = singleLoopDep(Plain);
  ASSERT_TRUE(MD.Serial.Found);
  EXPECT_GT(MD.Serial.WindowCycles, 10u);

  AnalysisOptions Tight;
  Tight.StaticPrefilter = true;
  ModuleAnalysis Kept(M, Tight);
  ASSERT_EQ(Kept.candidates().size(), 1u);
  EXPECT_FALSE(Kept.candidates()[0].Rejected);

  AnalysisOptions Loose;
  Loose.StaticPrefilter = true;
  Loose.SerialArcBudget = 40;
  ModuleAnalysis Rejected(M, Loose);
  ASSERT_EQ(Rejected.candidates().size(), 1u);
  EXPECT_TRUE(Rejected.candidates()[0].Rejected);
  EXPECT_EQ(Rejected.candidates()[0].Kind,
            RejectKind::SerialMemoryRecurrence);
}

TEST(Prefilter, FilteredProgramStillComputesTheSameResult) {
  // End-to-end: the pre-filter must only change scheduling, never values.
  ir::Module M = makeMain(serialRecurrenceLoop());
  pipeline::PipelineConfig Off;
  pipeline::PipelineConfig On;
  On.StaticPrefilter = true;
  pipeline::Jrpm JOff(M, Off);
  pipeline::Jrpm JOn(M, On);
  pipeline::PipelineResult ROff = JOff.runAll();
  pipeline::PipelineResult ROn = JOn.runAll();
  EXPECT_EQ(ROff.TlsRun.ReturnValue, ROn.TlsRun.ReturnValue);
  EXPECT_EQ(ROff.PlainRun.ReturnValue, ROn.TlsRun.ReturnValue);
  // The rejected loop pays no annotation overhead while profiling.
  EXPECT_LT(ROn.ProfiledRun.Cycles, ROff.ProfiledRun.Cycles);
}
