//===- tests/trace_replay_test.cpp - Record/replay equivalence -------------==//
//
// The trace subsystem's core contract: recording an annotated profiling
// run and replaying it into a fresh TraceEngine must reproduce the live
// run's SelectionResult bit-for-bit — per-loop statistics, Equation 1
// estimates, chosen STLs, and predicted speedups — for every registry
// workload at both annotation levels.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "jrpm/Pipeline.h"
#include "trace/Dump.h"
#include "trace/Replay.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace jrpm;

namespace {

/// One scratch .jtrace inside a ScopedTempDir.
class TempTrace {
public:
  explicit TempTrace(const std::string &Tag)
      : Dir("jrpm-trace-test"), P(Dir.file(Tag + ".jtrace")) {}
  const std::string &path() const { return P; }

private:
  testutil::ScopedTempDir Dir;
  std::string P;
};

pipeline::PipelineConfig captureConfig(const workloads::Workload &W,
                                       jit::AnnotationLevel Level,
                                       const std::string &Path) {
  pipeline::PipelineConfig Cfg;
  Cfg.Level = Level;
  Cfg.ExtendedPcBinning = true;
  Cfg.WorkloadName = W.Name;
  Cfg.RecordTracePath = Path;
  return Cfg;
}

} // namespace

TEST(TraceReplay, SelectionBitIdenticalOnAllWorkloads) {
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    for (jit::AnnotationLevel Level :
         {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized}) {
      const char *LevelName =
          Level == jit::AnnotationLevel::Base ? "base" : "opt";
      SCOPED_TRACE(W.Name + " (" + LevelName + ")");
      TempTrace Tmp(W.Name + "-" + LevelName);

      pipeline::PipelineConfig Cfg = captureConfig(W, Level, Tmp.path());
      pipeline::Jrpm J(W.Build(), Cfg);
      pipeline::Jrpm::ProfileOutcome Live = J.profileAndSelect();

      pipeline::PipelineConfig ReplayCfg = Cfg;
      ReplayCfg.RecordTracePath.clear();
      pipeline::Jrpm::ProfileOutcome Replayed =
          pipeline::selectFromTrace(Tmp.path(), ReplayCfg);

      // Bit-identical selection: exact equality, doubles included.
      EXPECT_TRUE(Live.Selection == Replayed.Selection);
      // The recorded run itself round-trips through the footer.
      EXPECT_EQ(Live.Run.Cycles, Replayed.Run.Cycles);
      EXPECT_EQ(Live.Run.Instructions, Replayed.Run.Instructions);
      EXPECT_EQ(Live.Run.ReturnValue, Replayed.Run.ReturnValue);
      EXPECT_EQ(Live.Run.Loads, Replayed.Run.Loads);
      EXPECT_EQ(Live.Run.Stores, Replayed.Run.Stores);
      EXPECT_EQ(Live.Run.L1Misses, Replayed.Run.L1Misses);
      // Hardware occupancy peaks come out of the same engine state.
      EXPECT_EQ(Live.PeakBanksInUse, Replayed.PeakBanksInUse);
      EXPECT_EQ(Live.PeakLocalSlots, Replayed.PeakLocalSlots);
      EXPECT_EQ(Live.PeakDynamicNest, Replayed.PeakDynamicNest);
    }
  }
}

TEST(TraceReplay, ReplayViaPipelineConfigSkipsInterpretation) {
  const workloads::Workload *W = workloads::findWorkload("Huffman");
  ASSERT_NE(W, nullptr);
  TempTrace Tmp("pipeline-replay");

  pipeline::PipelineConfig Cfg =
      captureConfig(*W, jit::AnnotationLevel::Optimized, Tmp.path());
  pipeline::Jrpm Recorder(W->Build(), Cfg);
  auto Live = Recorder.profileAndSelect();

  pipeline::PipelineConfig ReplayCfg = Cfg;
  ReplayCfg.RecordTracePath.clear();
  ReplayCfg.ReplayTracePath = Tmp.path();
  pipeline::Jrpm Replayer(W->Build(), ReplayCfg);
  auto Replayed = Replayer.profileAndSelect();

  EXPECT_TRUE(Live.Selection == Replayed.Selection);
  EXPECT_EQ(Replayer.lastTracer(), nullptr);

  // The replayed selection still drives speculative execution (steps 4-5).
  auto Tls = Replayer.runSpeculative(Replayed.Selection);
  auto Plain = Replayer.runPlain();
  EXPECT_EQ(Tls.Run.ReturnValue, Plain.ReturnValue);
}

TEST(TraceReplay, HeaderAndFooterDescribeTheCapture) {
  const workloads::Workload *W = workloads::findWorkload("BitOps");
  ASSERT_NE(W, nullptr);
  TempTrace Tmp("header");

  pipeline::PipelineConfig Cfg =
      captureConfig(*W, jit::AnnotationLevel::Optimized, Tmp.path());
  Cfg.Hw.ComparatorBanks = 6;
  Cfg.DisableLoopAfterThreads = 1234;
  pipeline::Jrpm J(W->Build(), Cfg);
  auto Live = J.profileAndSelect();

  trace::Reader R(Tmp.path());
  EXPECT_EQ(R.header().WorkloadName, "BitOps");
  EXPECT_EQ(R.header().AnnotationLevel, 1);
  EXPECT_TRUE(R.header().ExtendedPcBinning);
  EXPECT_EQ(R.header().DisableLoopAfterThreads, 1234u);
  EXPECT_EQ(R.header().Hw.ComparatorBanks, 6u);
  EXPECT_EQ(R.header().LoopLocals.size(), Live.Selection.Loops.size());

  // O(1) footer (no events decoded yet), then stream and cross-check.
  const trace::TraceFooter F = R.footer();
  EXPECT_EQ(F.Run.Cycles, Live.Run.Cycles);
  std::uint64_t Streamed = 0;
  trace::Event E;
  while (R.next(E))
    ++Streamed;
  EXPECT_EQ(Streamed, F.TotalEvents);
  EXPECT_EQ(R.eventsRead(), F.TotalEvents);
}

TEST(TraceReplay, RecordingDoesNotPerturbTheRun) {
  const workloads::Workload *W = workloads::findWorkload("Assignment");
  ASSERT_NE(W, nullptr);
  TempTrace Tmp("unperturbed");

  pipeline::PipelineConfig Plain;
  Plain.ExtendedPcBinning = true;
  pipeline::Jrpm JPlain(W->Build(), Plain);
  auto Unrecorded = JPlain.profileAndSelect();

  pipeline::PipelineConfig Rec =
      captureConfig(*W, jit::AnnotationLevel::Optimized, Tmp.path());
  pipeline::Jrpm JRec(W->Build(), Rec);
  auto Recorded = JRec.profileAndSelect();

  EXPECT_EQ(Unrecorded.Run.Cycles, Recorded.Run.Cycles);
  EXPECT_TRUE(Unrecorded.Selection == Recorded.Selection);
}

TEST(TraceReplay, ConfigOverrideReplaysUnderNewHardware) {
  const workloads::Workload *W = workloads::findWorkload("jess");
  ASSERT_NE(W, nullptr);
  TempTrace Tmp("override");

  pipeline::PipelineConfig Cfg =
      captureConfig(*W, jit::AnnotationLevel::Optimized, Tmp.path());
  pipeline::Jrpm J(W->Build(), Cfg);
  J.profileAndSelect();

  // One trace, several analysis configurations.
  trace::Reader R1(Tmp.path());
  trace::ReplayConfig Narrow = trace::recordedConfig(R1);
  Narrow.Hw.ComparatorBanks = 1;
  trace::ReplayOutcome NarrowOut = trace::selectFromTrace(R1, Narrow);

  trace::Reader R2(Tmp.path());
  trace::ReplayOutcome WideOut = trace::selectFromTrace(R2);

  EXPECT_LE(NarrowOut.PeakBanksInUse, 1u);
  EXPECT_GE(WideOut.PeakBanksInUse, NarrowOut.PeakBanksInUse);
  EXPECT_EQ(NarrowOut.EventsReplayed, WideOut.EventsReplayed);
  // Starving the comparator array must cost traced entries somewhere.
  std::uint64_t NarrowUntraced = 0, WideUntraced = 0;
  for (const auto &Rep : NarrowOut.Selection.Loops)
    NarrowUntraced += Rep.Stats.UntracedEntries;
  for (const auto &Rep : WideOut.Selection.Loops)
    WideUntraced += Rep.Stats.UntracedEntries;
  EXPECT_GE(NarrowUntraced, WideUntraced);
}

TEST(TraceReplay, DiffIdentifiesIdenticalAndDivergentTraces) {
  const workloads::Workload *W = workloads::findWorkload("BitOps");
  ASSERT_NE(W, nullptr);
  TempTrace A("diff-a"), B("diff-b"), C("diff-c");

  {
    pipeline::Jrpm J(W->Build(), captureConfig(
                                     *W, jit::AnnotationLevel::Optimized,
                                     A.path()));
    J.profileAndSelect();
  }
  {
    pipeline::Jrpm J(W->Build(), captureConfig(
                                     *W, jit::AnnotationLevel::Optimized,
                                     B.path()));
    J.profileAndSelect();
  }
  {
    pipeline::Jrpm J(W->Build(),
                     captureConfig(*W, jit::AnnotationLevel::Base, C.path()));
    J.profileAndSelect();
  }

  {
    trace::Reader RA(A.path()), RB(B.path());
    trace::DiffResult D = trace::diffTraces(RA, RB);
    EXPECT_TRUE(D.Identical) << D.Detail;
  }
  {
    trace::Reader RA(A.path()), RC(C.path());
    trace::DiffResult D = trace::diffTraces(RA, RC);
    EXPECT_FALSE(D.Identical);
    EXPECT_FALSE(D.Detail.empty());
  }
}

TEST(TraceReplay, DumpUsesTheSharedFormatter) {
  const workloads::Workload *W = workloads::findWorkload("BitOps");
  ASSERT_NE(W, nullptr);
  TempTrace Tmp("dump");
  pipeline::Jrpm J(W->Build(), captureConfig(
                                   *W, jit::AnnotationLevel::Optimized,
                                   Tmp.path()));
  J.profileAndSelect();

  trace::Reader R(Tmp.path());
  trace::Event E;
  ASSERT_TRUE(R.next(E));
  std::string Line = trace::formatEvent(E);
  EXPECT_NE(Line.find(trace::eventKindName(E.Kind)), std::string::npos);

  std::FILE *Null = std::fopen("/dev/null", "w");
  ASSERT_NE(Null, nullptr);
  trace::Reader R2(Tmp.path());
  EXPECT_EQ(trace::dumpTrace(R2, Null, 10), 10u);
  std::fclose(Null);
}
