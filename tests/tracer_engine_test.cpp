//===- tests/tracer_engine_test.cpp - Comparator-bank analysis tests -------==//
//
// Drives the TraceEngine with synthetic event streams that mirror the
// paper's Figure 3 and Figure 4 walk-throughs.
//
//===----------------------------------------------------------------------===//

#include "sim/Config.h"
#include "tracer/TraceEngine.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

using namespace jrpm;
using namespace jrpm::tracer;

namespace {

sim::HydraConfig smallConfig() {
  sim::HydraConfig Cfg;
  Cfg.ComparatorBanks = 2;
  Cfg.LocalVarSlots = 4;
  return Cfg;
}

std::vector<LoopTraceInfo> loops(std::size_t N,
                                 std::vector<std::uint16_t> Locals = {}) {
  std::vector<LoopTraceInfo> L(N);
  for (auto &Info : L)
    Info.AnnotatedLocals = Locals;
  return L;
}

} // namespace

TEST(TraceEngine, CriticalArcToPreviousThread) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1));
  E.onLoopStart(0, 1, 100);
  // Thread 0: two stores.
  E.onHeapStore(40, 110, 1);
  E.onHeapStore(44, 118, 2);
  E.onLoopIter(0, 120); // thread 1 starts
  // Thread 1 loads both; arcs 130-110=20 and 134-118=16; critical = 16.
  E.onHeapLoad(40, 130, 3);
  E.onHeapLoad(44, 134, 4);
  E.onLoopEnd(0, 140);

  const StlStats &S = E.stats(0);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Threads, 2u);
  EXPECT_EQ(S.Cycles, 40u);
  EXPECT_EQ(S.CritArcsPrev, 1u);
  EXPECT_EQ(S.CritLenPrev, 16u);
  EXPECT_EQ(S.CritArcsEarlier, 0u);
}

TEST(TraceEngine, ArcToEarlierThreadBinnedSeparately) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1));
  E.onLoopStart(0, 1, 0);
  E.onHeapStore(40, 5, 1); // thread 0
  E.onLoopIter(0, 10);     // thread 1
  E.onLoopIter(0, 20);     // thread 2
  E.onHeapLoad(40, 25, 2); // store was before thread 1 start: earlier bin
  E.onLoopEnd(0, 30);
  const StlStats &S = E.stats(0);
  EXPECT_EQ(S.CritArcsPrev, 0u);
  EXPECT_EQ(S.CritArcsEarlier, 1u);
  EXPECT_EQ(S.CritLenEarlier, 20u);
}

TEST(TraceEngine, SameThreadStoreLoadIsNotAnArc) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1));
  E.onLoopStart(0, 1, 0);
  E.onHeapStore(40, 5, 1);
  E.onHeapLoad(40, 8, 2); // same thread
  E.onLoopEnd(0, 10);
  EXPECT_EQ(E.stats(0).CritArcsPrev, 0u);
  EXPECT_EQ(E.stats(0).CritArcsEarlier, 0u);
}

TEST(TraceEngine, PreLoopStoreIgnored) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1));
  E.onHeapStore(40, 5, 1); // before the loop
  E.onLoopStart(0, 1, 10);
  E.onLoopIter(0, 20);
  E.onHeapLoad(40, 25, 2); // depends on pre-loop code, not a thread
  E.onLoopEnd(0, 30);
  EXPECT_EQ(E.stats(0).CritArcsPrev, 0u);
  EXPECT_EQ(E.stats(0).CritArcsEarlier, 0u);
}

TEST(TraceEngine, LocalVariableArcs) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1, {/*reg*/ 7}));
  E.onLoopStart(0, /*activation*/ 9, 0);
  E.onLocalStore(9, 7, 4, 1);
  E.onLoopIter(0, 10);
  E.onLocalLoad(9, 7, 12, 2); // arc of length 8, like Figure 3's in_p
  E.onLoopEnd(0, 20);
  EXPECT_EQ(E.stats(0).CritArcsPrev, 1u);
  EXPECT_EQ(E.stats(0).CritLenPrev, 8u);
}

TEST(TraceEngine, LocalsOfOtherActivationsIgnored) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1, {7}));
  E.onLoopStart(0, 9, 0);
  E.onLocalStore(42, 7, 4, 1); // different activation: no slot
  E.onLoopIter(0, 10);
  E.onLocalLoad(42, 7, 12, 2);
  E.onLoopEnd(0, 20);
  EXPECT_EQ(E.stats(0).CritArcsPrev, 0u);
}

TEST(TraceEngine, OverflowCountsThreadsExceedingStoreLimit) {
  sim::HydraConfig Cfg;
  Cfg.SpecStoreLines = 2;
  TraceEngine E(Cfg, loops(1));
  E.onLoopStart(0, 1, 0);
  // Thread 0 writes three distinct lines (words 0, 4, 8).
  E.onHeapStore(0, 1, 1);
  E.onHeapStore(4, 2, 1);
  E.onHeapStore(8, 3, 1);
  E.onLoopIter(0, 10);
  // Thread 1 writes a single line twice: no overflow.
  E.onHeapStore(16, 11, 1);
  E.onHeapStore(17, 12, 1);
  E.onLoopEnd(0, 20);
  const StlStats &S = E.stats(0);
  EXPECT_EQ(S.Threads, 2u);
  EXPECT_EQ(S.OverflowThreads, 1u);
  EXPECT_EQ(S.MaxStoreLines, 3u);
}

TEST(TraceEngine, OverflowCountsLoadLines) {
  sim::HydraConfig Cfg;
  Cfg.SpecLoadLines = 2;
  TraceEngine E(Cfg, loops(1));
  E.onLoopStart(0, 1, 0);
  E.onHeapLoad(0, 1, 1);
  E.onHeapLoad(4, 2, 1);
  E.onHeapLoad(8, 3, 1);
  E.onLoopEnd(0, 10);
  EXPECT_EQ(E.stats(0).OverflowThreads, 1u);
  EXPECT_EQ(E.stats(0).MaxLoadLines, 3u);
}

TEST(TraceEngine, RepeatedLineInSameThreadCountsOnce) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1));
  E.onLoopStart(0, 1, 0);
  E.onHeapLoad(0, 1, 1);
  E.onHeapLoad(1, 2, 1); // same line
  E.onHeapLoad(2, 3, 1);
  E.onLoopEnd(0, 10);
  EXPECT_EQ(E.stats(0).MaxLoadLines, 1u);
}

TEST(TraceEngine, BankExhaustionSkipsDeepLoops) {
  sim::HydraConfig Cfg = smallConfig(); // 2 banks
  TraceEngine E(Cfg, loops(3));
  E.onLoopStart(0, 1, 0);
  E.onLoopStart(1, 1, 1);
  E.onLoopStart(2, 1, 2); // no bank left
  E.onLoopIter(2, 5);
  E.onLoopEnd(2, 6);
  E.onLoopEnd(1, 8);
  E.onLoopEnd(0, 10);
  EXPECT_EQ(E.stats(2).Entries, 0u);
  EXPECT_EQ(E.stats(2).UntracedEntries, 1u);
  EXPECT_EQ(E.stats(0).Entries, 1u);
  EXPECT_EQ(E.peakBanksInUse(), 2u);
}

TEST(TraceEngine, SlotExhaustionSkipsLoop) {
  sim::HydraConfig Cfg = smallConfig(); // 4 local slots
  TraceEngine E(Cfg, loops(2, {1, 2, 3}));
  E.onLoopStart(0, 1, 0); // reserves 3 slots
  E.onLoopStart(1, 2, 1); // different activation: needs 3 more, only 1 free
  E.onLoopEnd(1, 5);
  E.onLoopEnd(0, 10);
  EXPECT_EQ(E.stats(0).Entries, 1u);
  EXPECT_EQ(E.stats(1).UntracedEntries, 1u);
}

TEST(TraceEngine, SharedLocalSlotAcrossNestedLoops) {
  // The inner loop annotates the same register in the same activation; it
  // must not reserve a second slot.
  sim::HydraConfig Cfg = smallConfig();
  TraceEngine E(Cfg, loops(2, {1, 2, 3}));
  E.onLoopStart(0, 1, 0);
  E.onLoopStart(1, 1, 1); // same activation: registers already covered
  EXPECT_EQ(E.peakLocalSlots(), 3u);
  E.onLoopEnd(1, 5);
  E.onLoopEnd(0, 10);
  EXPECT_EQ(E.stats(1).Entries, 1u);
}

TEST(TraceEngine, DisableAfterThreadsFreesBank) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1));
  E.setDisableLoopAfterThreads(2);
  for (int Entry = 0; Entry < 3; ++Entry) {
    std::uint64_t T = 100 * Entry;
    E.onLoopStart(0, 1, T);
    E.onLoopIter(0, T + 10);
    E.onLoopEnd(0, T + 20);
  }
  // Two threads per traced entry; after the first entry the count (2)
  // reaches the threshold, so later entries are untraced.
  EXPECT_EQ(E.stats(0).Threads, 2u);
  EXPECT_EQ(E.stats(0).UntracedEntries, 2u);
}

TEST(TraceEngine, DynamicParentsFollowNesting) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(3));
  E.onLoopStart(0, 1, 0);
  E.onLoopStart(1, 1, 1);
  E.onLoopEnd(1, 5);
  E.onLoopEnd(0, 10);
  E.onLoopStart(2, 1, 20);
  E.onLoopEnd(2, 25);
  std::vector<int> P = E.dynamicParents();
  EXPECT_EQ(P[0], -1);
  EXPECT_EQ(P[1], 0);
  EXPECT_EQ(P[2], -1);
}

TEST(TraceEngine, ReturnClosesOpenBanks) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(2));
  E.onLoopStart(0, 5, 0);
  E.onLoopStart(1, 5, 10);
  E.onHeapLoad(0, 15, 1);
  E.onReturn(5); // both banks belong to activation 5
  // Stats were finalized; re-entering works normally.
  EXPECT_EQ(E.stats(0).Entries, 1u);
  EXPECT_EQ(E.stats(1).Entries, 1u);
  E.onLoopStart(0, 6, 20);
  E.onLoopEnd(0, 30);
  EXPECT_EQ(E.stats(0).Entries, 2u);
}

TEST(TraceEngine, MismatchedELoopIgnored) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(2));
  E.onLoopStart(0, 1, 0);
  E.onLoopEnd(1, 5); // loop 1 never started: must not pop loop 0
  E.onLoopIter(0, 8);
  E.onLoopEnd(0, 10);
  EXPECT_EQ(E.stats(0).Threads, 2u);
  EXPECT_EQ(E.stats(1).Entries, 0u);
}

TEST(TraceEngine, PcBinningRecordsCriticalArcSites) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, loops(1), /*ExtendedPcBinning=*/true);
  E.onLoopStart(0, 1, 0);
  E.onHeapStore(40, 4, 1);
  E.onHeapStore(44, 6, 1);
  E.onLoopIter(0, 10);
  E.onHeapLoad(40, 12, /*Pc=*/101); // len 8
  E.onHeapLoad(44, 18, /*Pc=*/102); // len 12: not critical
  E.onLoopEnd(0, 20);
  const StlStats &S = E.stats(0);
  ASSERT_EQ(S.PcBins.size(), 1u);
  EXPECT_EQ(S.PcBins.begin()->first, 101);
  EXPECT_EQ(S.PcBins.begin()->second.CriticalArcs, 1u);
  EXPECT_EQ(S.PcBins.begin()->second.AccumulatedLength, 8u);
}

TEST(TraceEngine, HistoryFifoLimitsArcDetection) {
  sim::HydraConfig Cfg;
  Cfg.HeapTimestampFifoLines = 2;
  TraceEngine E(Cfg, loops(1));
  E.onLoopStart(0, 1, 0);
  E.onHeapStore(0, 1, 1);   // line 0
  E.onHeapStore(16, 2, 1);  // line 4
  E.onHeapStore(32, 3, 1);  // line 8 -> line 0 evicted
  E.onLoopIter(0, 10);
  E.onHeapLoad(0, 12, 2); // history lost: no arc
  E.onLoopEnd(0, 20);
  EXPECT_EQ(E.stats(0).CritArcsPrev, 0u);
}

TEST(TraceEngine, SlotsReleasedInStackOrderAcrossNesting) {
  // Three nested loops each reserving locals; the eloop order releases
  // them innermost-first and the file ends empty (reusable).
  sim::HydraConfig Cfg;
  Cfg.LocalVarSlots = 8;
  std::vector<LoopTraceInfo> Infos(3);
  Infos[0].AnnotatedLocals = {1, 2};
  Infos[1].AnnotatedLocals = {3};
  Infos[2].AnnotatedLocals = {4, 5, 6};
  TraceEngine E(Cfg, Infos);
  for (int Round = 0; Round < 3; ++Round) {
    std::uint64_t T = Round * 100;
    E.onLoopStart(0, 1, T);
    E.onLoopStart(1, 1, T + 1);
    E.onLoopStart(2, 1, T + 2);
    E.onLoopEnd(2, T + 10);
    E.onLoopEnd(1, T + 20);
    E.onLoopEnd(0, T + 30);
  }
  EXPECT_EQ(E.peakLocalSlots(), 6u);
  EXPECT_EQ(E.stats(0).Entries, 3u);
  EXPECT_EQ(E.stats(2).Entries, 3u);
}

TEST(TraceEngine, InterleavedEnginesStayIndependent) {
  // Two engines with different hardware configs, driven in lockstep from
  // interleaved event streams, must each produce exactly the stats they
  // produce when driven alone. This is the reentrancy contract the sweep
  // pool relies on: no shared mutable state between engine instances.
  using Ev = void (*)(TraceEngine &, std::uint64_t);
  const Ev Events[] = {
      [](TraceEngine &E, std::uint64_t B) { E.onLoopStart(0, 1, B); },
      [](TraceEngine &E, std::uint64_t B) { E.onHeapStore(40, B + 10, 1); },
      // Second store on a different line: with a 1-line FIFO it evicts the
      // line-10 timestamp, so the load below finds no arc there.
      [](TraceEngine &E, std::uint64_t B) { E.onHeapStore(44, B + 18, 2); },
      [](TraceEngine &E, std::uint64_t B) { E.onLoopIter(0, B + 20); },
      [](TraceEngine &E, std::uint64_t B) { E.onHeapLoad(40, B + 30, 3); },
      [](TraceEngine &E, std::uint64_t B) { E.onLoopEnd(0, B + 40); },
  };
  sim::HydraConfig CfgA; // defaults
  sim::HydraConfig CfgB; // starved history: loses the line-10 store
  CfgB.HeapTimestampFifoLines = 1;

  TraceEngine RefA(CfgA, loops(1)), RefB(CfgB, loops(1));
  for (Ev E : Events)
    E(RefA, 100);
  for (Ev E : Events)
    E(RefB, 500);

  TraceEngine A(CfgA, loops(1)), B(CfgB, loops(1));
  for (Ev E : Events) {
    E(A, 100);
    E(B, 500);
  }

  for (auto [Got, Want] : {std::pair{&A, &RefA}, std::pair{&B, &RefB}}) {
    const StlStats &G = Got->stats(0), &W = Want->stats(0);
    EXPECT_EQ(G.Entries, W.Entries);
    EXPECT_EQ(G.Threads, W.Threads);
    EXPECT_EQ(G.Cycles, W.Cycles);
    EXPECT_EQ(G.CritArcsPrev, W.CritArcsPrev);
    EXPECT_EQ(G.CritLenPrev, W.CritLenPrev);
    EXPECT_EQ(G.CritArcsEarlier, W.CritArcsEarlier);
    EXPECT_EQ(Got->peakBanksInUse(), Want->peakBanksInUse());
  }
  // The starved-history engine really did behave differently from the
  // default one, so the interleaving mixed two distinct analyses.
  EXPECT_NE(A.stats(0).CritArcsPrev, B.stats(0).CritArcsPrev);
}

TEST(TraceEngine, ConfigHeldByValueSurvivesCaller) {
  // Regression for the sweep reentrancy audit: the engine used to hold its
  // HydraConfig by reference, dangling when a sweep job built the config in
  // a temporary scope. It must copy.
  std::unique_ptr<TraceEngine> E;
  {
    sim::HydraConfig Cfg;
    Cfg.HeapTimestampFifoLines = 2;
    E = std::make_unique<TraceEngine>(Cfg, loops(1));
  } // Cfg destroyed; the engine must keep operating on its own copy
  E->onLoopStart(0, 1, 0);
  E->onHeapStore(0, 1, 1);
  E->onHeapStore(16, 2, 1);
  E->onHeapStore(32, 3, 1); // line 0 evicted from the 2-line FIFO
  E->onLoopIter(0, 10);
  E->onHeapLoad(0, 12, 2); // history lost: no arc
  E->onLoopEnd(0, 20);
  EXPECT_EQ(E->stats(0).CritArcsPrev, 0u);
}

TEST(TraceEngine, OutOfOrderELoopClosesInnerBanks) {
  // An eloop for the outer loop with the inner still open (a return-like
  // unwinding) must close the inner bank too and keep slot accounting
  // consistent for later entries.
  sim::HydraConfig Cfg;
  std::vector<LoopTraceInfo> Infos(2);
  Infos[0].AnnotatedLocals = {1};
  Infos[1].AnnotatedLocals = {2};
  TraceEngine E(Cfg, Infos);
  E.onLoopStart(0, 1, 0);
  E.onLoopStart(1, 1, 5);
  E.onLoopEnd(0, 20); // inner (1) never closed explicitly
  EXPECT_EQ(E.stats(1).Entries, 1u);
  // The slot file must be empty again: a fresh deep nest fits.
  E.onLoopStart(0, 2, 100);
  E.onLoopStart(1, 2, 105);
  E.onLoopEnd(1, 110);
  E.onLoopEnd(0, 120);
  EXPECT_EQ(E.stats(0).Entries, 2u);
  EXPECT_EQ(E.stats(1).Entries, 2u);
}
