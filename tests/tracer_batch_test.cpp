//===- tests/tracer_batch_test.cpp - Block-drain equivalence tests ---------==//
//
// The EventBlock contract says batching is a pure transport change: any
// drain schedule must leave the TraceEngine byte-identical to the
// per-event path. These tests sweep the block capacity from 1 upward —
// which forces a drain at every possible event offset of a stream that
// mixes heap, local, control, and deferred-eoi events — and pin the full
// observable surface (StlStats, dynamic parents, peaks, exported
// metrics) against an unbatched reference engine. A live pipeline test
// does the same through PipelineConfig::TraceBatchEvents.
//
//===----------------------------------------------------------------------===//

#include "jrpm/Pipeline.h"
#include "metrics/Metrics.h"
#include "sim/Config.h"
#include "trace/Reader.h"
#include "tracer/TraceEngine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace jrpm;
using namespace jrpm::tracer;

namespace {

sim::HydraConfig smallConfig() {
  sim::HydraConfig Cfg;
  Cfg.ComparatorBanks = 2;
  Cfg.LocalVarSlots = 4;
  return Cfg;
}

std::vector<LoopTraceInfo> loops(std::size_t N,
                                 std::vector<std::uint16_t> Locals = {}) {
  std::vector<LoopTraceInfo> L(N);
  for (auto &Info : L)
    Info.AnnotatedLocals = Locals;
  return L;
}

struct EventBuilder {
  std::vector<trace::Event> Ev;

  void heapLoad(std::uint32_t Addr, std::uint64_t Cycle, std::int32_t Pc) {
    trace::Event E;
    E.Kind = trace::EventKind::HeapLoad;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Ev.push_back(E);
  }
  void heapStore(std::uint32_t Addr, std::uint64_t Cycle, std::int32_t Pc) {
    trace::Event E;
    E.Kind = trace::EventKind::HeapStore;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Ev.push_back(E);
  }
  void localLoad(std::uint64_t Act, std::uint16_t Reg, std::uint64_t Cycle,
                 std::int32_t Pc) {
    trace::Event E;
    E.Kind = trace::EventKind::LocalLoad;
    E.Activation = Act;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Ev.push_back(E);
  }
  void localStore(std::uint64_t Act, std::uint16_t Reg, std::uint64_t Cycle,
                  std::int32_t Pc) {
    trace::Event E;
    E.Kind = trace::EventKind::LocalStore;
    E.Activation = Act;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Ev.push_back(E);
  }
  void loopStart(std::uint32_t LoopId, std::uint64_t Act,
                 std::uint64_t Cycle) {
    trace::Event E;
    E.Kind = trace::EventKind::LoopStart;
    E.LoopId = LoopId;
    E.Activation = Act;
    E.Cycle = Cycle;
    Ev.push_back(E);
  }
  void loopIter(std::uint32_t LoopId, std::uint64_t Cycle) {
    trace::Event E;
    E.Kind = trace::EventKind::LoopIter;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Ev.push_back(E);
  }
  void loopEnd(std::uint32_t LoopId, std::uint64_t Cycle) {
    trace::Event E;
    E.Kind = trace::EventKind::LoopEnd;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Ev.push_back(E);
  }
  void ret(std::uint64_t Act) {
    trace::Event E;
    E.Kind = trace::EventKind::Return;
    E.Activation = Act;
    Ev.push_back(E);
  }
  void callSite(std::int32_t Pc, std::uint64_t Cycle) {
    trace::Event E;
    E.Kind = trace::EventKind::CallSite;
    E.Pc = Pc;
    E.Cycle = Cycle;
    Ev.push_back(E);
  }
  void callReturn(std::uint64_t Cycle) {
    trace::Event E;
    E.Kind = trace::EventKind::CallReturn;
    E.Cycle = Cycle;
    Ev.push_back(E);
  }
  void readStats(std::uint32_t LoopId, std::uint64_t Cycle) {
    trace::Event E;
    E.Kind = trace::EventKind::ReadStats;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Ev.push_back(E);
  }
};

/// A stream that drives every drain specialization: events outside any
/// loop (no banks), a single traced loop (one bank), a nested traced pair
/// (many banks), a third nest over the bank budget (untraced frames),
/// local variables with shadowing reservations across two activations,
/// deferred eois, unbalanced exits via return, and a readstats probe.
std::vector<trace::Event> mixedStream() {
  EventBuilder B;
  std::uint64_t C = 0;
  // Outside any loop: heap traffic only feeds the store history.
  B.heapStore(100, ++C, 1);
  B.heapLoad(100, ++C, 2);
  B.localStore(7, 3, ++C, 3); // no reservation: ignored
  // One traced bank.
  B.loopStart(0, /*act*/ 7, ++C);
  B.localStore(7, 3, ++C, 4);
  B.heapStore(104, ++C, 5);
  B.loopIter(0, ++C);
  B.heapLoad(104, ++C, 6);   // prev-thread arc
  B.localLoad(7, 3, ++C, 7); // prev-thread local arc
  B.loopIter(0, ++C);
  B.heapLoad(104, ++C, 19); // store predates the previous thread: earlier arc
  // Nested traced bank with a shadowed register: reg 3 is already
  // reserved by loop 0's frame of the same activation.
  B.loopStart(1, 7, ++C);
  B.localStore(7, 3, ++C, 8);  // resolves to loop 0's slot
  B.localStore(7, 4, ++C, 9);  // loop 1's own slot
  B.callSite(41, ++C);
  B.callReturn(++C);
  // Third nest: over the two-bank budget, so the frame is untraced.
  B.loopStart(2, 9, ++C);
  B.localLoad(9, 5, ++C, 10); // activation 9 has no reservations
  B.loopIter(2, ++C);         // untraced frame: no bank iterates
  B.loopIter(1, ++C);
  B.localLoad(7, 4, ++C, 11); // prev-thread arc in the nested bank
  B.heapStore(108, ++C, 12);
  B.loopIter(1, ++C);
  B.heapLoad(108, ++C, 13); // prev-thread arc
  B.heapLoad(104, ++C, 14); // earlier-thread arc
  B.loopEnd(2, ++C);
  B.readStats(1, ++C);
  B.loopIter(0, ++C);
  B.loopEnd(1, ++C); // closes the nested bank
  // Unbalanced exit: return pops activation 7's remaining frame.
  B.ret(7);
  // Re-enter with a fresh activation to recycle released slots.
  B.loopStart(0, 11, ++C);
  B.localStore(11, 3, ++C, 15);
  B.loopIter(0, ++C);
  B.localLoad(11, 3, ++C, 16);
  B.heapStore(112, ++C, 17);
  B.loopIter(0, ++C);
  B.heapLoad(112, ++C, 18);
  B.loopEnd(0, ++C);
  return B.Ev;
}

/// Everything the engine exposes, captured for equality checks.
struct Observed {
  std::vector<StlStats> Stats;
  std::vector<int> Parents;
  std::uint32_t PeakBanks = 0;
  std::uint32_t PeakSlots = 0;
  std::uint32_t PeakNest = 0;
  std::string MetricsJson;

  bool operator==(const Observed &O) const = default;
};

Observed observe(const TraceEngine &E) {
  Observed O;
  for (std::uint32_t L = 0; L < E.numLoops(); ++L)
    O.Stats.push_back(E.stats(L));
  O.Parents = E.dynamicParents();
  O.PeakBanks = E.peakBanksInUse();
  O.PeakSlots = E.peakLocalSlots();
  O.PeakNest = E.peakDynamicNest();
  metrics::Registry R;
  E.exportMetrics(R);
  O.MetricsJson = R.toJson().dump();
  return O;
}

} // namespace

TEST(TracerBatch, CapacitySweepMatchesPerEventReference) {
  const sim::HydraConfig Cfg = smallConfig();
  const std::vector<LoopTraceInfo> Loops = loops(3, {3, 4});
  const std::vector<trace::Event> Stream = mixedStream();

  // Reference: the per-event virtual path, no block involved.
  TraceEngine Ref(Cfg, Loops, /*ExtendedPcBinning=*/true);
  for (const trace::Event &E : Stream)
    trace::dispatchEvent(E, Ref);
  const Observed Want = observe(Ref);
  // The stream must actually exercise the analysis for the sweep to mean
  // anything.
  ASSERT_GT(Want.Stats[0].CritArcsPrev + Want.Stats[1].CritArcsPrev, 0u);
  ASSERT_GT(Want.Stats[0].CritArcsEarlier, 0u);
  ASSERT_EQ(Want.Stats[2].UntracedEntries, 1u);

  // Capacities 1..N+8 drain at every event offset of the stream: capacity
  // 1 drains after each batched event, and each larger capacity shifts
  // every drain boundary by one position relative to the control events.
  const std::uint32_t MaxCap =
      static_cast<std::uint32_t>(Stream.size()) + 8;
  for (std::uint32_t Cap = 1; Cap <= MaxCap; ++Cap) {
    TraceEngine E(Cfg, Loops, /*ExtendedPcBinning=*/true);
    E.setBatchCapacity(Cap);
    interp::EventBlock *Blk = E.eventBlock();
    ASSERT_NE(Blk, nullptr);
    ASSERT_EQ(Blk->capacity(), Cap);
    for (const trace::Event &Ev : Stream)
      trace::dispatchEventBatched(Ev, E, Blk);
    interp::drainPending(E, Blk);
    EXPECT_EQ(observe(E), Want) << "capacity " << Cap;
  }
}

TEST(TracerBatch, DisabledLoopsRevertEoiToSynchronousPath) {
  // With a disable threshold the eoi charge becomes state-dependent, so
  // the engine must not defer it — and the batched path must still agree
  // with the per-event one.
  const sim::HydraConfig Cfg = smallConfig();
  const std::vector<LoopTraceInfo> Loops = loops(1);
  const std::vector<trace::Event> Stream = [] {
    EventBuilder B;
    std::uint64_t C = 0;
    B.loopStart(0, 7, ++C);
    for (int I = 0; I < 6; ++I) {
      B.heapStore(100, ++C, 1);
      B.loopIter(0, ++C);
      B.heapLoad(100, ++C, 2);
    }
    B.loopEnd(0, ++C);
    return B.Ev;
  }();

  TraceEngine Ref(Cfg, Loops, /*ExtendedPcBinning=*/true);
  Ref.setDisableLoopAfterThreads(3);
  EXPECT_EQ(Ref.eventBlock()->deferredEoiCost(), -1);
  for (const trace::Event &E : Stream)
    trace::dispatchEvent(E, Ref);
  const Observed Want = observe(Ref);

  for (std::uint32_t Cap : {1u, 2u, 3u, 7u, 64u}) {
    TraceEngine E(Cfg, Loops, /*ExtendedPcBinning=*/true);
    E.setDisableLoopAfterThreads(3);
    E.setBatchCapacity(Cap);
    interp::EventBlock *Blk = E.eventBlock();
    for (const trace::Event &Ev : Stream)
      trace::dispatchEventBatched(Ev, E, Blk);
    interp::drainPending(E, Blk);
    EXPECT_EQ(observe(E), Want) << "capacity " << Cap;
  }
}

TEST(TracerBatch, LivePipelineBatchOneMatchesDefault) {
  // The same invariant through the live interpreter: a one-event block
  // (drain after every batched event) must reproduce the default block's
  // profile bit for bit.
  const workloads::Workload *W = workloads::findWorkload("BitOps");
  ASSERT_NE(W, nullptr);

  pipeline::PipelineConfig Default;
  pipeline::PipelineConfig BatchOne;
  BatchOne.TraceBatchEvents = 1;

  pipeline::Jrpm JD(W->Build(), Default);
  pipeline::Jrpm JB(W->Build(), BatchOne);
  auto PD = JD.profileAndSelect();
  auto PB = JB.profileAndSelect();

  EXPECT_EQ(PD.Run.Cycles, PB.Run.Cycles);
  EXPECT_EQ(PD.PeakBanksInUse, PB.PeakBanksInUse);
  EXPECT_EQ(PD.PeakLocalSlots, PB.PeakLocalSlots);
  ASSERT_EQ(PD.Selection.Loops.size(), PB.Selection.Loops.size());
  for (std::size_t I = 0; I < PD.Selection.Loops.size(); ++I) {
    EXPECT_EQ(PD.Selection.Loops[I].Stats, PB.Selection.Loops[I].Stats);
    EXPECT_EQ(PD.Selection.Loops[I].Selected, PB.Selection.Loops[I].Selected);
  }
}
