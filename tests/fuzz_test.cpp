//===- tests/fuzz_test.cpp - Randomized whole-stack property tests ---------==//
//
// Feeds generated programs (tests/RandomProgram.h) through every layer and
// checks the invariants that must hold for *any* program:
//
//   * sequential execution is deterministic,
//   * the annotated module computes the same result and the tracer's bank
//     stack balances,
//   * speculative execution is bit-identical to sequential execution under
//     every engine configuration (restart, sync, line-granular),
//   * Equation 1 estimates stay within [~0, p].
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "corpus/Variant.h"
#include "hydra/TlsEngine.h"
#include "jit/Annotator.h"
#include "jit/TlsPlan.h"
#include "jrpm/Pipeline.h"
#include "sweep/ThreadPool.h"
#include "tracer/TraceEngine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

using namespace jrpm;

namespace {

interp::RunResult runTls(const ir::Module &M, const sim::HydraConfig &Cfg) {
  analysis::ModuleAnalysis MA(M);
  std::vector<jit::TlsLoopPlan> Plans;
  for (const auto &C : MA.candidates())
    if (!C.Rejected)
      Plans.push_back(jit::buildTlsPlan(MA, C));
  hydra::TlsEngine Engine(M, Cfg, std::move(Plans));
  interp::Machine Machine(M, Cfg);
  Machine.setDispatcher(&Engine);
  return Machine.run();
}

} // namespace

class FuzzSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSuite, WholeStackInvariants) {
  testutil::ProgramGenerator Gen(GetParam());
  ir::Module M = Gen.generate();
  sim::HydraConfig Cfg;

  // Sequential determinism.
  auto Seq1 = testutil::runModule(M, Cfg);
  auto Seq2 = testutil::runModule(M, Cfg);
  ASSERT_EQ(Seq1.ReturnValue, Seq2.ReturnValue);
  ASSERT_EQ(Seq1.Cycles, Seq2.Cycles);

  // Annotated execution: same result, balanced tracer, sane estimates.
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Optimized);
  tracer::TraceEngine Tracer(Cfg, AM.LoopInfos);
  interp::Machine Profiled(AM.Module, Cfg);
  Profiled.setTraceSink(&Tracer);
  auto Prof = Profiled.run();
  EXPECT_EQ(Prof.ReturnValue, Seq1.ReturnValue);
  EXPECT_GE(Prof.Cycles, Seq1.Cycles);
  tracer::SelectionResult Sel =
      tracer::selectStls(Tracer, Prof.Cycles, Cfg);
  for (const auto &Rep : Sel.Loops) {
    EXPECT_GE(Rep.Estimate.Speedup, 0.0);
    EXPECT_LE(Rep.Estimate.BaseSpeedup, 4.0 + 1e-9);
  }

  // Speculative execution under three configurations.
  EXPECT_EQ(runTls(M, Cfg).ReturnValue, Seq1.ReturnValue)
      << "restart mode diverged (seed " << GetParam() << ")";
  sim::HydraConfig Sync = Cfg;
  Sync.SyncCarriedLocals = true;
  EXPECT_EQ(runTls(M, Sync).ReturnValue, Seq1.ReturnValue)
      << "sync mode diverged (seed " << GetParam() << ")";
  sim::HydraConfig Line = Cfg;
  Line.ViolationGrain = sim::ViolationGranularity::Line;
  EXPECT_EQ(runTls(M, Line).ReturnValue, Seq1.ReturnValue)
      << "line-grain mode diverged (seed " << GetParam() << ")";
}

TEST_P(FuzzSuite, FullPipelineMatches) {
  testutil::ProgramGenerator Gen(GetParam() * 7919 + 13);
  pipeline::Jrpm J(Gen.generate(), pipeline::PipelineConfig{});
  pipeline::PipelineResult R = J.runAll();
  EXPECT_EQ(R.TlsRun.ReturnValue, R.PlainRun.ReturnValue)
      << "pipeline diverged (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSuite, ::testing::Range<std::uint64_t>(1, 41));

TEST(CorpusFuzz, VariantsSatisfyWholeStackInvariants) {
  // The same whole-stack differential the random programs get, over a
  // deterministic sample of template-extracted corpus variants: one
  // template per family (first in registry order), two seeds each. The
  // corpus engine runs its own oracles over thousands of variants
  // (corpus_test.cpp, ci_corpus_golden.sh); this keeps the shape corpus
  // wired into the classic fuzz invariants as well.
  std::vector<corpus::Template> All = corpus::extractRegistryTemplates();
  std::set<std::string> SeenFamilies;
  for (const corpus::Template &T : All) {
    if (!SeenFamilies.insert(T.Family).second)
      continue;
    for (std::uint64_t Seed : {3, 23}) {
      corpus::Variant V = corpus::instantiate(T, Seed);
      sim::HydraConfig Cfg;
      auto Seq = testutil::runModule(V.Module, Cfg);
      EXPECT_EQ(runTls(V.Module, Cfg).ReturnValue, Seq.ReturnValue)
          << T.Id << " seed " << Seed << " (restart mode)";
      sim::HydraConfig Sync = Cfg;
      Sync.SyncCarriedLocals = true;
      EXPECT_EQ(runTls(V.Module, Sync).ReturnValue, Seq.ReturnValue)
          << T.Id << " seed " << Seed << " (sync mode)";
      sim::HydraConfig Line = Cfg;
      Line.ViolationGrain = sim::ViolationGranularity::Line;
      EXPECT_EQ(runTls(V.Module, Line).ReturnValue, Seq.ReturnValue)
          << T.Id << " seed " << Seed << " (line-grain mode)";
    }
  }
}

TEST(ConcurrentFuzz, GeneratedProgramsBitIdenticalUnderSweepPool) {
  // The sweep-engine variant of the fuzz harness: N generated programs are
  // dispatched concurrently on the work-stealing pool, every job asserting
  // that speculative execution reproduces its own sequential run bit for
  // bit. Each job builds its module, engines, and PRNG from its seed alone,
  // so the test doubles as a reentrancy check of the whole stack (and is
  // the workload scripts/ci_tsan.sh puts under ThreadSanitizer).
  constexpr std::uint64_t NumPrograms = 24;
  sweep::ThreadPool Pool(4);
  std::atomic<int> Failures{0};
  std::vector<std::string> Errors(NumPrograms);
  for (std::uint64_t Seed = 0; Seed < NumPrograms; ++Seed)
    Pool.submit([&, Seed]() {
      testutil::ProgramGenerator Gen(Seed * 2654435761 + 101);
      ir::Module M = Gen.generate();
      sim::HydraConfig Cfg;
      auto Seq = testutil::runModule(M, Cfg);
      auto Tls = runTls(M, Cfg);
      if (Tls.ReturnValue != Seq.ReturnValue) {
        Failures.fetch_add(1, std::memory_order_relaxed);
        Errors[Seed] = "speculative checksum diverged (seed " +
                       std::to_string(Seed) + ")";
        return;
      }
      // Sequential re-run inside the concurrent job: still deterministic.
      auto Seq2 = testutil::runModule(M, Cfg);
      if (Seq2.ReturnValue != Seq.ReturnValue ||
          Seq2.Cycles != Seq.Cycles) {
        Failures.fetch_add(1, std::memory_order_relaxed);
        Errors[Seed] = "sequential re-run diverged (seed " +
                       std::to_string(Seed) + ")";
      }
    });
  Pool.wait();
  EXPECT_EQ(Failures.load(), 0);
  for (const std::string &E : Errors)
    EXPECT_TRUE(E.empty()) << E;
}
