//===- tests/corpus_test.cpp - Template corpus subsystem tests -------------==//
//
// Holds the corpus engine to its contracts: extraction is deterministic
// and total over the workload registry, seeded instantiation is
// byte-identical across reruns and sweep thread counts, every variant is
// structurally clean (verifyModule + annotation lint), the oracle stack
// passes on clean variants with zero false static rejections, the
// shrinker converges on a planted divergence, and `.jrpm` repro documents
// round-trip with full {template_id, seed} provenance.
//
//===----------------------------------------------------------------------===//

#include "analysis/Candidates.h"
#include "corpus/CorpusRunner.h"
#include "ir/AnnotationVerifier.h"
#include "ir/Verifier.h"
#include "jit/Annotator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace jrpm;
using namespace jrpm::corpus;

namespace {

/// A small deterministic template subset (every runner/oracle test uses
/// the same slice, keeping suite runtime bounded): one template per
/// distinct family, first occurrence in registry order.
std::vector<Template> familyRepresentatives() {
  std::vector<Template> All = extractRegistryTemplates();
  std::vector<Template> Out;
  std::set<std::string> Seen;
  for (Template &T : All)
    if (Seen.insert(T.Family).second)
      Out.push_back(std::move(T));
  return Out;
}

} // namespace

TEST(CorpusTemplates, ExtractionIsDeterministic) {
  std::vector<Template> A = extractRegistryTemplates();
  std::vector<Template> B = extractRegistryTemplates();
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(templatesToJson(A).dump(), templatesToJson(B).dump());
}

TEST(CorpusTemplates, ExtractionIsTotalOverRegistry) {
  std::vector<Template> All = extractRegistryTemplates();
  const auto &Registry = workloads::allWorkloads();
  ASSERT_GE(Registry.size(), 26u);
  // Every workload contributes at least one template.
  for (const workloads::Workload &W : Registry) {
    bool Found = false;
    for (const Template &T : All)
      Found |= T.Id.rfind(W.Name + "/", 0) == 0;
    EXPECT_TRUE(Found) << "no template extracted from " << W.Name;
  }
  // Every template is well formed: a known family, nonempty sane holes.
  const std::vector<std::string> &Families = templateFamilies();
  for (const Template &T : All) {
    EXPECT_NE(std::find(Families.begin(), Families.end(), T.Family),
              Families.end())
        << T.Id;
    ASSERT_FALSE(T.Holes.empty()) << T.Id;
    for (const Hole &H : T.Holes) {
      EXPECT_LE(H.Min, H.Max) << T.Id << "/" << H.Name;
      EXPECT_LE(H.Min, H.Observed) << T.Id << "/" << H.Name;
      EXPECT_LE(H.Observed, H.Max) << T.Id << "/" << H.Name;
    }
  }
  // The registry exercises more than one family.
  std::set<std::string> SeenFamilies;
  for (const Template &T : All)
    SeenFamilies.insert(T.Family);
  EXPECT_GE(SeenFamilies.size(), 3u);
}

TEST(CorpusTemplates, HoleKindNamesRoundTrip) {
  for (HoleKind K : AllHoleKinds) {
    HoleKind Back = HoleKind::TripCount;
    ASSERT_TRUE(holeKindFromName(holeKindName(K), Back)) << holeKindName(K);
    EXPECT_EQ(Back, K);
  }
  HoleKind Out;
  EXPECT_FALSE(holeKindFromName("no-such-kind", Out));
}

TEST(CorpusVariants, SameSeedIsByteIdentical) {
  for (const Template &T : familyRepresentatives()) {
    Variant A = instantiate(T, 7);
    Variant B = instantiate(T, 7);
    EXPECT_EQ(A.Source, B.Source) << T.Id;
    EXPECT_EQ(A.Digest, B.Digest) << T.Id;
    EXPECT_EQ(A.Spec, B.Spec) << T.Id;
    // Provenance is embedded in the spec itself.
    EXPECT_EQ(A.Spec.TemplateId, T.Id);
    EXPECT_EQ(A.Spec.Seed, 7u);
  }
}

TEST(CorpusVariants, EveryVariantVerifiesCleanly) {
  for (const Template &T : familyRepresentatives()) {
    for (std::uint64_t Seed : {1, 2, 3}) {
      Variant V = instantiate(T, Seed);
      std::vector<std::string> Structural = ir::verifyModule(V.Module);
      ASSERT_TRUE(Structural.empty())
          << T.Id << " seed " << Seed << ": " << Structural.front();
      analysis::ModuleAnalysis MA(V.Module);
      std::vector<ir::LoopAnnotationInfo> Infos;
      for (const analysis::CandidateStl &C : MA.candidates())
        Infos.push_back({C.AnnotatedLocals});
      jit::AnnotatedModule AM = jit::annotateModule(
          V.Module, MA, jit::AnnotationLevel::Optimized);
      std::vector<std::string> Lint = ir::verifyAnnotations(AM.Module, Infos);
      EXPECT_TRUE(Lint.empty())
          << T.Id << " seed " << Seed << ": "
          << (Lint.empty() ? "" : Lint.front());
    }
  }
}

TEST(CorpusOracles, CleanVariantsPassAllOracles) {
  OracleConfig Cfg;
  for (const Template &T : familyRepresentatives()) {
    Variant V = instantiate(T, 11);
    OracleOutcome O = runOracles(T, V, Cfg);
    EXPECT_TRUE(O.Passed)
        << T.Id << ": "
        << (O.Failures.empty() ? "" : O.Failures.front().Detail);
    EXPECT_EQ(O.FalseRejects, 0u) << T.Id;
    EXPECT_GT(O.EventsReplayed, 0u) << T.Id;
  }
}

TEST(CorpusShrink, ConvergesOnPlantedDivergence) {
  // Plant a fault that fires when the trip-count holes multiply to >= 12,
  // on a template with two such holes (loop-nest). The trigger is monotone
  // in every hole, so the minimizer must drive all non-trip holes to their
  // minima while keeping the product at or above the threshold.
  std::vector<Template> All = extractRegistryTemplates();
  const Template *Nest = nullptr;
  for (const Template &T : All)
    if (T.Family == "loop-nest") {
      Nest = &T;
      break;
    }
  ASSERT_NE(Nest, nullptr) << "registry lost its loop-nest shapes";

  OracleConfig Inject;
  Inject.InjectTripAtLeast = 12;

  VariantSpec Big = fillHoles(*Nest, 5);
  for (HoleValue &H : Big.Holes)
    if (const Hole *TH = Nest->findHole(H.Name))
      H.Value = TH->Max; // worst case: everything maxed
  ASSERT_GE(tripProduct(*Nest, Big), Inject.InjectTripAtLeast);
  OracleOutcome BigOutcome = runOracles(*Nest, instantiate(*Nest, Big),
                                        Inject);
  ASSERT_FALSE(BigOutcome.Passed);

  ShrinkResult R = shrinkVariant(*Nest, Big, Inject);
  EXPECT_TRUE(R.StillFailing);
  EXPECT_GT(R.Steps, 0u);
  EXPECT_LT(R.Evaluations, MaxShrinkEvaluations);
  // Strictly smaller, still failing, and minimal on every non-trigger hole.
  EXPECT_LT(R.Minimized.weight(*Nest), Big.weight(*Nest));
  EXPECT_GE(tripProduct(*Nest, R.Minimized), Inject.InjectTripAtLeast);
  for (const Hole &H : Nest->Holes) {
    if (H.Kind != HoleKind::TripCount) {
      EXPECT_EQ(R.Minimized.valueOf(H.Name, -1), H.Min)
          << H.Name << " not minimized";
    }
  }
  // The shrunk repro reproduces: same spec, same module, still failing.
  Variant Min = instantiate(*Nest, R.Minimized);
  EXPECT_FALSE(runOracles(*Nest, Min, Inject).Passed);

  // Without the planted fault the same variant passes and the shrinker
  // reports nothing to do.
  OracleConfig Clean;
  ShrinkResult None = shrinkVariant(*Nest, Big, Clean);
  EXPECT_FALSE(None.StillFailing);
  EXPECT_EQ(None.Steps, 0u);
}

TEST(CorpusRepro, DocumentRoundTripsWithProvenance) {
  std::vector<Template> Reps = familyRepresentatives();
  ASSERT_FALSE(Reps.empty());
  const Template &T = Reps.front();
  Variant V = instantiate(T, 42);
  std::string Doc = reproDocument(V);

  VariantSpec Back;
  std::uint64_t Digest = 0;
  std::string Err;
  ASSERT_TRUE(parseReproDocument(Doc, Back, &Digest, &Err)) << Err;
  EXPECT_EQ(Back, V.Spec);
  EXPECT_EQ(Digest, V.Digest);
  // The document alone rebuilds the exact module.
  Variant Again = instantiate(T, Back);
  EXPECT_EQ(Again.Source, V.Source);
  EXPECT_EQ(Again.Digest, Digest);

  VariantSpec Bad;
  EXPECT_FALSE(parseReproDocument("{}", Bad, nullptr, &Err));
  EXPECT_FALSE(parseReproDocument("not json", Bad, nullptr, &Err));
}

TEST(CorpusRepro, ReportFailuresReproduceFromReportAlone) {
  // A planted fault makes some variants fail; every failure record in the
  // report must carry enough provenance to rebuild the exact failing
  // variant: {template_id, seed} alone reproduces the digest.
  std::vector<Template> Reps = familyRepresentatives();
  CorpusOptions Opts;
  Opts.VariantsPerTemplate = 4;
  Opts.Oracle.InjectTripAtLeast = 16;
  CorpusReport Report = runCorpus(Reps, Opts);
  ASSERT_GT(Report.Failed, 0u) << "planted fault never fired";
  ASSERT_EQ(Report.Failures.size(), Report.Failed);
  for (const FailureRecord &F : Report.Failures) {
    const Template *T = findTemplate(Reps, F.Spec.TemplateId);
    ASSERT_NE(T, nullptr) << F.Spec.TemplateId;
    Variant Rebuilt = instantiate(*T, F.Spec.Seed);
    EXPECT_EQ(Rebuilt.Digest, F.Digest) << F.Spec.TemplateId;
    EXPECT_EQ(Rebuilt.Spec, F.Spec);
    if (F.HasShrunk) {
      EXPECT_LE(F.ShrunkWeight, F.Spec.weight(*T));
      Variant Min = instantiate(*T, F.ShrunkSpec);
      EXPECT_EQ(Min.Digest, F.ShrunkDigest);
    }
  }
}

TEST(ConcurrentCorpus, ReportByteIdenticalAcrossThreadCounts) {
  // The sweep-integration contract: plan-order slots mean the report JSON
  // never depends on scheduling. 1 thread vs 4 threads vs a rerun must
  // serialize byte-identically (this is also the suite ci_tsan.sh puts
  // under ThreadSanitizer).
  std::vector<Template> Reps = familyRepresentatives();
  CorpusOptions One;
  One.VariantsPerTemplate = 3;
  One.Threads = 1;
  CorpusOptions Four = One;
  Four.Threads = 4;

  std::string A = runCorpus(Reps, One).toJson().dump();
  std::string B = runCorpus(Reps, Four).toJson().dump();
  std::string C = runCorpus(Reps, Four).toJson().dump();
  EXPECT_EQ(A, B);
  EXPECT_EQ(B, C);

  metrics::Registry Metrics;
  CorpusOptions WithMetrics = One;
  WithMetrics.Metrics = &Metrics;
  CorpusReport R = runCorpus(Reps, WithMetrics);
  EXPECT_EQ(R.toJson().dump(), A);
  EXPECT_EQ(Metrics.counter("corpus.variants").value(),
            R.TotalVariants);
  EXPECT_EQ(Metrics.counter("corpus.failures").value(), R.Failed);
}
