//===- tests/analysis_test.cpp - CFG analyses unit tests -------------------==//

#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "analysis/Dominators.h"
#include "analysis/InductionInfo.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::analysis;
using namespace jrpm::front;
using jrpm::testutil::makeMain;

namespace {

const ir::Function &mainFunc(const ir::Module &M) {
  return M.Functions[M.EntryFunction];
}

} // namespace

TEST(Dominators, DiamondCfg) {
  // entry -> then/else -> join
  ir::Module M = makeMain(seq({
      assign("x", c(1)),
      iffElse(v("x"), assign("y", c(1)), assign("y", c(2))),
      ret(v("y")),
  }));
  const ir::Function &F = mainFunc(M);
  DominatorTree DT(F);
  // Entry dominates everything.
  for (std::uint32_t B = 0; B < F.numBlocks(); ++B) {
    if (DT.isReachable(B)) {
      EXPECT_TRUE(DT.dominates(0, B));
    }
  }
  // Find the join block (the one with two predecessors).
  auto Preds = F.computePredecessors();
  int Join = -1;
  for (std::uint32_t B = 0; B < F.numBlocks(); ++B)
    if (Preds[B].size() == 2)
      Join = static_cast<int>(B);
  ASSERT_GE(Join, 0);
  // Neither branch arm dominates the join.
  for (std::uint32_t P : Preds[static_cast<std::uint32_t>(Join)])
    EXPECT_FALSE(DT.dominates(P, static_cast<std::uint32_t>(Join)));
}

TEST(Dominators, SelfDominance) {
  ir::Module M = makeMain(seq({ret(c(0))}));
  DominatorTree DT(mainFunc(M));
  EXPECT_TRUE(DT.dominates(0, 0));
}

TEST(LoopInfo, SingleLoopDiscovered) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(4)), 1,
              assign("s", add(v("s"), v("i")))),
      ret(v("s")),
  }));
  const ir::Function &F = mainFunc(M);
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_EQ(L.Parent, -1);
  EXPECT_FALSE(L.Latches.empty());
  EXPECT_FALSE(L.ExitTargets.empty());
  EXPECT_TRUE(L.contains(L.Header));
}

TEST(LoopInfo, NestedLoopsAndHeights) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(3)), 1,
              forLoop("j", c(0), lt(v("j"), c(3)), 1,
                      forLoop("k", c(0), lt(v("k"), c(3)), 1,
                              assign("s", add(v("s"), c(1)))))),
      ret(v("s")),
  }));
  const ir::Function &F = mainFunc(M);
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  ASSERT_EQ(LI.loops().size(), 3u);
  EXPECT_EQ(LI.maxDepth(), 3u);
  std::uint32_t Outermost = 0;
  for (std::uint32_t I = 0; I < 3; ++I)
    if (LI.loops()[I].Depth == 1)
      Outermost = I;
  EXPECT_EQ(LI.heightOf(Outermost), 3u);
}

TEST(LoopInfo, SiblingLoops) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(3)), 1, assign("s", add(v("s"), c(1)))),
      forLoop("j", c(0), lt(v("j"), c(3)), 1, assign("s", add(v("s"), c(2)))),
      ret(v("s")),
  }));
  const ir::Function &F = mainFunc(M);
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.loops()[0].Depth, 1u);
  EXPECT_EQ(LI.loops()[1].Depth, 1u);
}

TEST(Liveness, LoopCarriedIsLiveAtHeader) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(4)), 1,
              assign("s", add(v("s"), v("i")))),
      ret(v("s")),
  }));
  const ir::Function &F = mainFunc(M);
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  Liveness LV(F);
  ASSERT_EQ(LI.loops().size(), 1u);
  // Find registers of s and i by name.
  std::uint16_t SReg = 0xFFFF, IReg = 0xFFFF;
  for (const auto &[Name, Reg] : F.NamedLocals) {
    if (Name == "s")
      SReg = Reg;
    if (Name == "i")
      IReg = Reg;
  }
  ASSERT_NE(SReg, 0xFFFF);
  ASSERT_NE(IReg, 0xFFFF);
  EXPECT_TRUE(LV.liveIn(LI.loops()[0].Header).test(SReg));
  EXPECT_TRUE(LV.liveIn(LI.loops()[0].Header).test(IReg));
}

TEST(Induction, RecognizesInductorAndReduction) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(16))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(16)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  }));
  const ir::Function &F = mainFunc(M);
  FunctionAnalysis FA(F);
  ASSERT_EQ(FA.LI.loops().size(), 1u);
  const InductionInfo &Info = FA.LoopScalars[0];
  std::uint16_t SReg = 0xFFFF, IReg = 0xFFFF;
  for (const auto &[Name, Reg] : F.NamedLocals) {
    if (Name == "s")
      SReg = Reg;
    if (Name == "i")
      IReg = Reg;
  }
  EXPECT_TRUE(Info.Inductors.count(IReg));
  EXPECT_EQ(Info.Inductors.at(IReg), 1);
  EXPECT_TRUE(Info.Reductions.count(SReg));
  EXPECT_TRUE(Info.OtherCarried.empty());
}

TEST(Induction, CarriedNonInductorClassified) {
  // x = x * 2 + 1 is carried but neither an inductor nor a sum reduction
  // (two in-loop uses of x would also disqualify a reduction).
  ir::Module M = makeMain(seq({
      assign("x", c(1)),
      assign("lim", c(10)),
      forLoop("i", c(0), lt(v("i"), v("lim")), 1,
              assign("x", add(mul(v("x"), c(2)), c(1)))),
      ret(v("x")),
  }));
  const ir::Function &F = mainFunc(M);
  FunctionAnalysis FA(F);
  ASSERT_EQ(FA.LI.loops().size(), 1u);
  const InductionInfo &Info = FA.LoopScalars[0];
  std::uint16_t XReg = 0xFFFF;
  for (const auto &[Name, Reg] : F.NamedLocals)
    if (Name == "x")
      XReg = Reg;
  bool Found = false;
  for (std::uint16_t R : Info.OtherCarried)
    Found |= R == XReg;
  EXPECT_TRUE(Found);
  // The loop limit is an invariant.
  std::uint16_t LimReg = 0xFFFF;
  for (const auto &[Name, Reg] : F.NamedLocals)
    if (Name == "lim")
      LimReg = Reg;
  bool Inv = false;
  for (std::uint16_t R : Info.Invariants)
    Inv |= R == LimReg;
  EXPECT_TRUE(Inv);
}

TEST(Candidates, PointerChaseRejected) {
  // p = a[p] loaded at the loop top and stored at the bottom: the paper's
  // "obvious" serializer.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              store(v("a"), v("i"), srem(add(v("i"), c(7)), c(64)))),
      assign("p", c(0)),
      assign("n", c(0)),
      whileLoop(lt(v("n"), c(100)),
                seq({
                    assign("p", ld(v("a"), v("p"))),
                    assign("n", add(v("n"), c(1))),
                })),
      ret(v("p")),
  }));
  ModuleAnalysis MA(M);
  bool FoundRejected = false;
  for (const CandidateStl &C : MA.candidates())
    FoundRejected |= C.Rejected;
  EXPECT_TRUE(FoundRejected);
}

TEST(Candidates, AllocInLoopRejected) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(4)), 1,
              seq({
                  assign("a", allocWords(c(8))),
                  store(v("a"), c(0), v("i")),
                  assign("s", add(v("s"), ld(v("a"), c(0)))),
              })),
      ret(v("s")),
  }));
  ModuleAnalysis MA(M);
  ASSERT_EQ(MA.candidates().size(), 1u);
  EXPECT_TRUE(MA.candidates()[0].Rejected);
  EXPECT_NE(MA.candidates()[0].RejectReason.find("allocates"),
            std::string::npos);
}

TEST(Candidates, AllocThroughCallRejected) {
  ProgramDef P;
  FuncDef Helper;
  Helper.Name = "helper";
  Helper.Params = {};
  Helper.Body = seq({
      assign("a", allocWords(c(4))),
      ret(v("a")),
  });
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(4)), 1,
              assign("s", add(v("s"), call("helper", {})))),
      ret(v("s")),
  });
  P.Functions.push_back(std::move(Helper));
  P.Functions.push_back(std::move(Main));
  ir::Module M = front::lowerProgram(P);
  ModuleAnalysis MA(M);
  ASSERT_EQ(MA.candidates().size(), 1u);
  EXPECT_TRUE(MA.candidates()[0].Rejected);
}

TEST(Candidates, ParallelLoopAccepted) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              store(v("a"), v("i"), mul(v("i"), v("i")))),
      ret(ld(v("a"), c(5))),
  }));
  ModuleAnalysis MA(M);
  ASSERT_EQ(MA.candidates().size(), 1u);
  EXPECT_FALSE(MA.candidates()[0].Rejected);
  // A pure inductor loop needs no local-variable annotations.
  EXPECT_TRUE(MA.candidates()[0].AnnotatedLocals.empty());
}

TEST(Candidates, CarriedLocalGetsAnnotationSlot) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(64))),
      assign("x", c(1)),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              seq({
                  store(v("a"), v("i"), v("x")),
                  assign("x", add(mul(v("x"), c(3)), ld(v("a"), c(0)))),
              })),
      ret(v("x")),
  }));
  ModuleAnalysis MA(M);
  ASSERT_EQ(MA.candidates().size(), 1u);
  EXPECT_FALSE(MA.candidates()[0].Rejected);
  EXPECT_EQ(MA.candidates()[0].AnnotatedLocals.size(), 1u);
}

TEST(Candidates, LoopCountMatchesTable6Style) {
  ir::Module M = makeMain(seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(3)), 1,
              forLoop("j", c(0), lt(v("j"), c(3)), 1,
                      assign("s", add(v("s"), c(1))))),
      forLoop("k", c(0), lt(v("k"), c(3)), 1,
              assign("s", add(v("s"), c(2)))),
      ret(v("s")),
  }));
  ModuleAnalysis MA(M);
  EXPECT_EQ(MA.loopCount(), 3u);
  EXPECT_EQ(MA.maxStaticLoopDepth(), 2u);
}

TEST(LoopInfo, IrreducibleCycleIsNotANaturalLoop) {
  // Hand-built CFG with a two-entry cycle (unreachable from structured
  // code): entry branches into both B1 and B2, which branch to each other.
  // Neither dominates the other, so no backedge exists and the analyses
  // must return no loops without misbehaving.
  ir::Module M;
  ir::IRBuilder B(M);
  B.createFunction("irreducible", 0);
  std::uint32_t B1 = B.newBlock();
  std::uint32_t B2 = B.newBlock();
  std::uint32_t Exit = B.newBlock();
  std::uint16_t Cond = B.emitConstI(1);
  B.emitCondBr(Cond, B1, B2);
  B.setBlock(B1);
  B.emitCondBr(Cond, B2, Exit);
  B.setBlock(B2);
  B.emitCondBr(Cond, B1, Exit);
  B.setBlock(Exit);
  B.emitRet();
  M.finalize();
  ASSERT_TRUE(ir::verifyModule(M).empty());

  const ir::Function &F = M.Functions[0];
  DominatorTree DT(F);
  EXPECT_FALSE(DT.dominates(B1, B2));
  EXPECT_FALSE(DT.dominates(B2, B1));
  LoopInfo LI(F, DT);
  EXPECT_TRUE(LI.loops().empty());
  ModuleAnalysis MA(M);
  EXPECT_EQ(MA.loopCount(), 0u);
}

TEST(Dominators, UnreachableBlocksAreSelfContained) {
  ir::Module M;
  ir::IRBuilder B(M);
  B.createFunction("f", 0);
  std::uint32_t Dead = B.newBlock();
  B.emitRet();
  B.setBlock(Dead);
  B.emitRet();
  M.finalize();
  const ir::Function &F = M.Functions[0];
  DominatorTree DT(F);
  EXPECT_TRUE(DT.isReachable(0));
  EXPECT_FALSE(DT.isReachable(Dead));
  EXPECT_TRUE(DT.dominates(Dead, Dead));
  EXPECT_FALSE(DT.dominates(0, Dead));
}
