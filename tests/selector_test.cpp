//===- tests/selector_test.cpp - Equation 2 selection tests ----------------==//
//
// Drives the TraceEngine with synthetic loop-nest event streams and checks
// which decomposition Equation 2 picks — including the paper's Table 3
// scenario (outer loop vs inner loop of the Huffman decoder).
//
//===----------------------------------------------------------------------===//

#include "tracer/Selector.h"
#include "tracer/TraceEngine.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::tracer;

namespace {

/// Emits a two-level nest: outer loop 0 with `OuterIters` iterations, each
/// containing inner loop 1 with `InnerIters` iterations of `InnerBody`
/// cycles. `CarryAddr` != 0 adds a store->load chain across outer
/// iterations near the end of each outer body.
struct NestDriver {
  sim::HydraConfig Cfg;
  TraceEngine Engine;
  std::uint64_t Now = 0;

  explicit NestDriver(std::uint32_t NumLoops)
      : Engine(Cfg, std::vector<LoopTraceInfo>(NumLoops)) {}

  std::uint64_t runNest(std::uint64_t OuterIters, std::uint64_t InnerIters,
                        std::uint64_t InnerBody, std::uint32_t CarryAddr) {
    std::uint64_t Start = Now;
    Engine.onLoopStart(0, 1, Now);
    for (std::uint64_t O = 0; O < OuterIters; ++O) {
      if (O)
        Engine.onLoopIter(0, Now);
      if (CarryAddr)
        Engine.onHeapLoad(CarryAddr, Now, 7);
      Engine.onLoopStart(1, 1, Now);
      for (std::uint64_t I = 0; I < InnerIters; ++I) {
        if (I)
          Engine.onLoopIter(1, Now);
        Now += InnerBody;
      }
      Engine.onLoopEnd(1, Now);
      Now += 4;
      if (CarryAddr)
        Engine.onHeapStore(CarryAddr, Now, 8);
      Now += 2;
    }
    Engine.onLoopEnd(0, Now);
    return Now - Start;
  }
};

} // namespace

TEST(Selector, PrefersOuterLoopWhenInnerIsTiny) {
  // Inner iterations are far too small to amortize per-thread overheads;
  // the outer loop has no carried dependency -> pick the outer loop.
  NestDriver D(2);
  D.runNest(/*OuterIters=*/200, /*InnerIters=*/6, /*InnerBody=*/8,
            /*CarryAddr=*/0);
  SelectionResult R = selectStls(D.Engine, D.Now, D.Cfg);
  ASSERT_EQ(R.Loops.size(), 2u);
  EXPECT_TRUE(R.Loops[0].Selected);
  EXPECT_FALSE(R.Loops[1].Selected);
  EXPECT_EQ(R.Loops[1].Parent, 0);
}

TEST(Selector, PrefersInnerLoopWhenOuterSerializes) {
  // A tight store->load chain across outer iterations (arc covers almost
  // the whole outer body) makes the outer loop useless, while the inner
  // loop is big and parallel.
  NestDriver D(2);
  D.runNest(/*OuterIters=*/40, /*InnerIters=*/60, /*InnerBody=*/40,
            /*CarryAddr=*/100);
  SelectionResult R = selectStls(D.Engine, D.Now, D.Cfg);
  EXPECT_FALSE(R.Loops[0].Selected);
  EXPECT_TRUE(R.Loops[1].Selected);
}

TEST(Selector, SerialWhenNothingHelps) {
  // One tiny loop: overheads exceed any parallel gain.
  NestDriver D(1);
  D.Engine.onLoopStart(0, 1, D.Now);
  for (int I = 0; I < 3; ++I) {
    if (I)
      D.Engine.onLoopIter(0, D.Now);
    D.Now += 5;
  }
  D.Engine.onLoopEnd(0, D.Now);
  SelectionResult R = selectStls(D.Engine, D.Now + 1000, D.Cfg);
  EXPECT_TRUE(R.SelectedLoops.empty());
  EXPECT_LE(R.PredictedSpeedup, 1.0 + 1e-9);
}

TEST(Selector, CoverageAndSerialAccounting) {
  NestDriver D(2);
  std::uint64_t LoopCycles =
      D.runNest(100, 10, 20, /*CarryAddr=*/0);
  std::uint64_t Program = D.Now + LoopCycles; // half serial, half loop
  SelectionResult R = selectStls(D.Engine, Program, D.Cfg);
  EXPECT_NEAR(R.Loops[0].Coverage, 0.5, 0.02);
  EXPECT_NEAR(R.SerialCycles, static_cast<double>(LoopCycles), 16.0);
  EXPECT_GT(R.PredictedSpeedup, 1.0);
  EXPECT_LT(R.PredictedSpeedup, 2.1); // Amdahl: half the program is serial
}

TEST(Selector, SelectedAncestorDeactivatesSubtree) {
  NestDriver D(2);
  D.runNest(300, 12, 30, /*CarryAddr=*/0);
  SelectionResult R = selectStls(D.Engine, D.Now, D.Cfg);
  // Whatever the estimates, never both levels of one nest.
  EXPECT_FALSE(R.Loops[0].Selected && R.Loops[1].Selected);
}

TEST(Selector, UntracedLoopStaysSerial) {
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, std::vector<LoopTraceInfo>(1));
  // Loop never ran.
  SelectionResult R = selectStls(E, 1000, Cfg);
  EXPECT_FALSE(R.Loops[0].Selected);
  EXPECT_DOUBLE_EQ(R.PredictedCycles, 1000.0);
}

TEST(Selector, CyclicParentVotesAreCut) {
  // A loop observed in two contexts can produce vote patterns that would
  // form a cycle in the "parent" relation; dynamicParents must break it.
  sim::HydraConfig Cfg;
  TraceEngine E(Cfg, std::vector<LoopTraceInfo>(2));
  // Context A: 0 encloses 1 (twice: majority for parent[1] = 0).
  for (int K = 0; K < 2; ++K) {
    E.onLoopStart(0, 1, K * 100);
    E.onLoopStart(1, 1, K * 100 + 10);
    E.onLoopEnd(1, K * 100 + 20);
    E.onLoopEnd(0, K * 100 + 30);
  }
  // Context B: 1 encloses 0 (twice: majority for parent[0] = 1).
  for (int K = 0; K < 2; ++K) {
    E.onLoopStart(1, 1, 1000 + K * 100);
    E.onLoopStart(0, 1, 1000 + K * 100 + 10);
    E.onLoopEnd(0, 1000 + K * 100 + 20);
    E.onLoopEnd(1, 1000 + K * 100 + 30);
  }
  std::vector<int> P = E.dynamicParents();
  // No cycle: at least one of the two must be a root.
  bool Cycle = P[0] == 1 && P[1] == 0;
  EXPECT_FALSE(Cycle);
  // And selection must terminate with sane accounting.
  SelectionResult R = selectStls(E, 5000, Cfg);
  EXPECT_GE(R.PredictedSpeedup, 0.99);
}
