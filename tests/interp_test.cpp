//===- tests/interp_test.cpp - Machine / memory timing tests ---------------==//

#include "TestUtil.h"
#include "interp/Heap.h"
#include "sim/CacheModel.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::front;
using jrpm::testutil::makeMain;
using jrpm::testutil::runModule;

TEST(Heap, AllocIsLineAlignedAndZeroed) {
  interp::Heap H;
  std::uint32_t A = H.allocWords(3);
  std::uint32_t B = H.allocWords(1);
  EXPECT_EQ(A % 4, 0u);
  EXPECT_EQ(B % 4, 0u);
  EXPECT_EQ(B, A + 4u);
  EXPECT_EQ(H.load(A), 0u);
  H.store(A, 42);
  EXPECT_EQ(H.load(A), 42u);
}

TEST(CacheModel, HitsAfterFill) {
  sim::HydraConfig Cfg;
  sim::L1CacheModel L1(Cfg);
  EXPECT_FALSE(L1.access(100)); // cold miss
  EXPECT_TRUE(L1.access(100));  // hit
  EXPECT_TRUE(L1.access(101));  // same line
  EXPECT_FALSE(L1.access(1000));
}

TEST(CacheModel, LruEvictionWithinSet) {
  sim::HydraConfig Cfg;
  Cfg.L1Lines = 8;
  Cfg.L1Assoc = 2; // 4 sets
  sim::L1CacheModel L1(Cfg);
  // Three lines mapping to set 0 (line numbers 0, 4, 8 -> addresses 0,16,32).
  EXPECT_FALSE(L1.access(0));
  EXPECT_FALSE(L1.access(16));
  EXPECT_TRUE(L1.access(0));   // keep 0 recent
  EXPECT_FALSE(L1.access(32)); // evicts 16 (LRU)
  EXPECT_TRUE(L1.access(0));
  EXPECT_FALSE(L1.access(16));
}

TEST(Machine, CountsInstructionsAndCycles) {
  ir::Module M = makeMain(seq({ret(add(c(1), c(2)))}));
  auto R = runModule(M);
  // consti, addi (the frontend folds +const into the iinc form), ret.
  EXPECT_EQ(R.Instructions, 3u);
  EXPECT_GE(R.Cycles, R.Instructions);
  EXPECT_EQ(R.ReturnValue, 3u);
}

TEST(Machine, LoadMissesCostExtraCycles) {
  sim::HydraConfig Cfg;
  // Two versions: the second re-reads the same word (hits in L1).
  ir::Module M1 = makeMain(seq({
      assign("a", allocWords(c(4))),
      assign("x", ld(v("a"), c(0))),
      ret(v("x")),
  }));
  ir::Module M2 = makeMain(seq({
      assign("a", allocWords(c(4))),
      assign("x", ld(v("a"), c(0))),
      assign("x", ld(v("a"), c(0))),
      ret(v("x")),
  }));
  auto R1 = runModule(M1, Cfg);
  auto R2 = runModule(M2, Cfg);
  EXPECT_EQ(R1.L1Misses, 1u);
  EXPECT_EQ(R2.L1Misses, 1u);
  // The second load hits in the L1: it adds its 2 instructions (the index
  // constant and the load itself) but no miss penalty.
  EXPECT_EQ(R2.Instructions, R1.Instructions + 2);
  EXPECT_EQ(R2.Cycles, R1.Cycles + 2);
}

TEST(Machine, DivCostsMoreThanMul) {
  ir::Module MMul = makeMain(seq({ret(mul(c(10), c(3)))}));
  ir::Module MDiv = makeMain(seq({ret(sdiv(c(10), c(3)))}));
  auto RA = runModule(MMul);
  auto RD = runModule(MDiv);
  EXPECT_EQ(RA.Instructions, RD.Instructions);
  EXPECT_GT(RD.Cycles, RA.Cycles);
}

TEST(Machine, LoadStoreCountsReported) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(8))),
      forLoop("i", c(0), lt(v("i"), c(5)), 1,
              store(v("a"), v("i"), v("i"))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(5)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  }));
  auto R = runModule(M);
  EXPECT_EQ(R.Loads, 5u);
  EXPECT_EQ(R.Stores, 5u);
  EXPECT_EQ(R.ReturnValue, 10u);
}

TEST(Machine, DeterministicAcrossRuns) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(64))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              seq({
                  store(v("a"), v("i"), mul(v("i"), v("i"))),
                  assign("s", add(v("s"), ld(v("a"), v("i")))),
              })),
      ret(v("s")),
  }));
  auto R1 = runModule(M);
  auto R2 = runModule(M);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(R1.ReturnValue, R2.ReturnValue);
  EXPECT_EQ(R1.L1Misses, R2.L1Misses);
}

namespace {

/// A sink that records every event kind, for annotation plumbing tests.
class CountingSink : public interp::TraceSink {
public:
  std::uint64_t HeapLoads = 0, HeapStores = 0, LocalLoads = 0,
                LocalStores = 0, LoopStarts = 0, LoopIters = 0, LoopEnds = 0,
                Returns = 0;
  std::uint32_t ExtraPerEvent = 0;

  std::uint32_t onHeapLoad(std::uint32_t, std::uint64_t,
                           std::int32_t) override {
    ++HeapLoads;
    return ExtraPerEvent;
  }
  std::uint32_t onHeapStore(std::uint32_t, std::uint64_t,
                            std::int32_t) override {
    ++HeapStores;
    return ExtraPerEvent;
  }
  std::uint32_t onLocalLoad(std::uint64_t, std::uint16_t, std::uint64_t,
                            std::int32_t) override {
    ++LocalLoads;
    return ExtraPerEvent;
  }
  std::uint32_t onLocalStore(std::uint64_t, std::uint16_t, std::uint64_t,
                             std::int32_t) override {
    ++LocalStores;
    return ExtraPerEvent;
  }
  std::uint32_t onLoopStart(std::uint32_t, std::uint64_t,
                            std::uint64_t) override {
    ++LoopStarts;
    return ExtraPerEvent;
  }
  std::uint32_t onLoopIter(std::uint32_t, std::uint64_t) override {
    ++LoopIters;
    return ExtraPerEvent;
  }
  std::uint32_t onLoopEnd(std::uint32_t, std::uint64_t) override {
    ++LoopEnds;
    return ExtraPerEvent;
  }
  void onReturn(std::uint64_t) override { ++Returns; }
};

} // namespace

TEST(Machine, SinkSeesMemoryEventsAndCharges) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(8))),
      store(v("a"), c(0), c(5)),
      ret(ld(v("a"), c(0))),
  }));
  CountingSink Sink;
  interp::Machine Machine(M, sim::HydraConfig{});
  Machine.setTraceSink(&Sink);
  auto RBase = Machine.run();
  EXPECT_EQ(Sink.HeapLoads, 1u);
  EXPECT_EQ(Sink.HeapStores, 1u);
  EXPECT_EQ(Sink.Returns, 1u);

  // The sink's extra cycles are charged to the program (the software-only
  // profiler model).
  CountingSink Expensive;
  Expensive.ExtraPerEvent = 100;
  interp::Machine Machine2(M, sim::HydraConfig{});
  Machine2.setTraceSink(&Expensive);
  auto RSlow = Machine2.run();
  EXPECT_EQ(RSlow.Cycles, RBase.Cycles + 200);
}
