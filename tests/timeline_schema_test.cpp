//===- tests/timeline_schema_test.cpp - trace_event schema validation ------==//
//
// Validates the Chrome trace_event documents the Timeline exports: every
// "B" has a matching "E" on the same (pid, tid) track with non-decreasing
// timestamps (the stack discipline that makes spans nest instead of
// overlap), instants are self-contained, and the pid/tid assignment is a
// pure function of registration order. Checked for the two real producers:
// a full TLS pipeline run (simulated-cycle timestamps, byte-identical
// across runs) and a 4-worker sweep (wall-clock timestamps — structure and
// track naming are validated, timestamps deliberately are not).
//
//===----------------------------------------------------------------------===//

#include "jrpm/Pipeline.h"
#include "metrics/Timeline.h"
#include "sweep/SweepRunner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

using namespace jrpm;

namespace {

struct TrackState {
  std::vector<std::string> OpenSpans; // names of currently-open B events
  std::uint64_t LastTs = 0;
  bool SawTs = false;
};

/// Walks a trace_event document, enforcing the schema on every event and
/// filling per-track statistics. Fails the current test on violation
/// (void so ASSERT_* may abort it).
void validateTraceEvents(
    const Json &Root,
    std::map<std::pair<std::uint64_t, std::uint64_t>, TrackState> &Tracks) {
  const Json *Events = Root.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  for (const Json &E : Events->items()) {
    const Json *Ph = E.find("ph");
    ASSERT_NE(Ph, nullptr) << "event without ph";
    const Json *Pid = E.find("pid");
    const Json *Tid = E.find("tid");
    ASSERT_NE(Pid, nullptr);
    ASSERT_NE(Tid, nullptr);
    std::string Kind = Ph->str();
    if (Kind == "M") {
      const Json *Name = E.find("name");
      ASSERT_NE(Name, nullptr);
      EXPECT_TRUE(Name->str() == "process_name" ||
                  Name->str() == "thread_name");
      continue;
    }
    TrackState &T = Tracks[{Pid->asUint(), Tid->asUint()}];
    const Json *Ts = E.find("ts");
    ASSERT_NE(Ts, nullptr) << "non-metadata event without ts";
    // Within one track events are recorded in time order: a new event can
    // never run backwards, which is what rules out overlapping siblings.
    if (T.SawTs) {
      EXPECT_GE(Ts->asUint(), T.LastTs) << "timestamps ran backwards";
    }
    T.LastTs = Ts->asUint();
    T.SawTs = true;
    if (Kind == "B") {
      const Json *Name = E.find("name");
      ASSERT_NE(Name, nullptr) << "B event without name";
      T.OpenSpans.push_back(Name->str());
    } else if (Kind == "E") {
      ASSERT_FALSE(T.OpenSpans.empty()) << "E without matching B";
      T.OpenSpans.pop_back();
    } else if (Kind == "i") {
      EXPECT_NE(E.find("name"), nullptr);
    } else {
      ADD_FAILURE() << "unknown event phase '" << Kind << "'";
    }
  }
  for (const auto &[Key, T] : Tracks)
    EXPECT_TRUE(T.OpenSpans.empty())
        << "track (" << Key.first << "," << Key.second << ") has "
        << T.OpenSpans.size() << " unclosed span(s)";
}

/// Collects (pid, tid) -> "process/thread" names from the metadata.
std::map<std::pair<std::uint64_t, std::uint64_t>, std::string>
trackNames(const Json &Root) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> Names;
  const Json *Events = Root.find("traceEvents");
  if (!Events)
    return Names;
  std::map<std::uint64_t, std::string> Processes;
  for (const Json &E : Events->items()) {
    const Json *Ph = E.find("ph");
    const Json *Name = E.find("name");
    if (!Ph || Ph->str() != "M" || !Name)
      continue;
    const Json *Args = E.find("args");
    const Json *ArgName = Args ? Args->find("name") : nullptr;
    if (!ArgName)
      continue;
    if (Name->str() == "process_name")
      Processes[E.find("pid")->asUint()] = ArgName->str();
    else
      Names[{E.find("pid")->asUint(), E.find("tid")->asUint()}] =
          Processes[E.find("pid")->asUint()] + "/" + ArgName->str();
  }
  return Names;
}

Json runTlsTimeline(const workloads::Workload &W) {
  metrics::Timeline TL;
  pipeline::PipelineConfig Cfg;
  Cfg.ExtendedPcBinning = true;
  Cfg.Timeline = &TL;
  pipeline::Jrpm J(W.Build(), Cfg);
  J.runAll();
  return TL.toJson();
}

} // namespace

TEST(TimelineSchema, TlsPipelineSpansBalancedAndTracksStable) {
  const workloads::Workload *W = workloads::findWorkload("fft");
  ASSERT_NE(W, nullptr);
  Json Root = runTlsTimeline(*W);

  std::map<std::pair<std::uint64_t, std::uint64_t>, TrackState> Tracks;
  validateTraceEvents(Root, Tracks);
  EXPECT_FALSE(Tracks.empty());

  // Expected track layout: the three pipeline phases, the tracer's bank
  // array, one row per Hydra core and one for the engine.
  auto Names = trackNames(Root);
  std::set<std::string> Seen;
  for (const auto &[Key, N] : Names)
    Seen.insert(N);
  for (const char *Expected :
       {"jrpm/plain", "jrpm/profile", "jrpm/tls", "tracer/banks",
        "hydra/cpu0", "hydra/cpu3", "hydra/engine"})
    EXPECT_TRUE(Seen.count(Expected)) << "missing track " << Expected;

  // Simulated-cycle timestamps make the whole document a pure function of
  // the run: a second identical pipeline must export identical bytes.
  EXPECT_EQ(Root.dump(), runTlsTimeline(*W).dump());

  // Nothing was dropped by the event cap on a workload this size.
  EXPECT_EQ(Root.find("droppedEvents"), nullptr);
}

TEST(TimelineSchema, SweepWorkerSpansBalancedOn4Threads) {
  sweep::SweepPlan Plan;
  Plan.Workloads = {"BitOps", "Huffman", "NumHeapSort", "compress"};
  std::vector<sweep::SweepJob> Jobs;
  std::string Err;
  ASSERT_TRUE(Plan.expand(Jobs, &Err)) << Err;

  metrics::Timeline TL;
  sweep::SweepReport R = sweep::runSweep(Jobs, 4, &TL);
  ASSERT_TRUE(R.allOk());
  Json Root = TL.toJson();

  std::map<std::pair<std::uint64_t, std::uint64_t>, TrackState> Tracks;
  validateTraceEvents(Root, Tracks);

  // Worker tracks are registered up front in index order, so all four
  // exist (pid/tid stable) even if the pool never scheduled onto some.
  auto Names = trackNames(Root);
  ASSERT_EQ(Names.size(), 4u);
  std::uint64_t Tid = 0;
  std::uint64_t Pid = Names.begin()->first.first;
  for (const auto &[Key, N] : Names) {
    EXPECT_EQ(Key.first, Pid) << "workers span multiple pids";
    EXPECT_EQ(Key.second, Tid);
    EXPECT_EQ(N, "sweep/worker" + std::to_string(Tid));
    ++Tid;
  }

  // Every job produced exactly one span somewhere: total B events across
  // worker tracks == number of jobs.
  std::uint64_t Begins = 0;
  for (const Json &E : Root.find("traceEvents")->items()) {
    const Json *Ph = E.find("ph");
    if (Ph && Ph->str() == "B")
      ++Begins;
  }
  EXPECT_EQ(Begins, Jobs.size());
}
