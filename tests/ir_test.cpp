//===- tests/ir_test.cpp - IR container / builder / verifier tests ---------==//

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::ir;

namespace {

/// Builds: main() { r = 1 + 2; ret r; }
Module makeTinyModule() {
  Module M;
  IRBuilder B(M);
  B.createFunction("main", 0);
  std::uint16_t One = B.emitConstI(1);
  std::uint16_t Two = B.emitConstI(2);
  std::uint16_t Sum = B.emitBinary(Opcode::Add, One, Two);
  B.emitRet(Sum);
  M.finalize();
  return M;
}

} // namespace

TEST(Opcode, NamesAndClasses) {
  EXPECT_STREQ(opcodeName(Opcode::Add), "add");
  EXPECT_STREQ(opcodeName(Opcode::SLoop), "sloop");
  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::CondBr));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Call));
  EXPECT_TRUE(definesDst(Opcode::Load));
  EXPECT_FALSE(definesDst(Opcode::Store));
  EXPECT_TRUE(isAnnotation(Opcode::LwlAnno));
  EXPECT_FALSE(isAnnotation(Opcode::Load));
}

TEST(IR, SuccessorsOfTerminators) {
  Module M;
  IRBuilder B(M);
  B.createFunction("f", 0);
  std::uint32_t B1 = B.newBlock();
  std::uint32_t B2 = B.newBlock();
  std::uint16_t C = B.emitConstI(1);
  B.emitCondBr(C, B1, B2);
  B.setBlock(B1);
  B.emitBr(B2);
  B.setBlock(B2);
  B.emitRet();

  std::vector<std::uint32_t> Succs;
  M.Functions[0].Blocks[0].appendSuccessors(Succs);
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], B1);
  EXPECT_EQ(Succs[1], B2);

  auto Preds = M.Functions[0].computePredecessors();
  EXPECT_EQ(Preds[B2].size(), 2u);
  EXPECT_TRUE(Preds[0].empty());
}

TEST(IR, FinalizeAssignsDensePcs) {
  Module M = makeTinyModule();
  EXPECT_EQ(M.totalInstructions(), 4u);
  int Expected = 0;
  for (const Instruction &I : M.Functions[0].Blocks[0].Instructions)
    EXPECT_EQ(I.Pc, Expected++);
}

TEST(IR, FindFunction) {
  Module M = makeTinyModule();
  EXPECT_EQ(M.findFunction("main"), 0);
  EXPECT_EQ(M.findFunction("missing"), -1);
}

TEST(IR, DumpContainsMnemonics) {
  Module M = makeTinyModule();
  std::string Text = M.dump();
  EXPECT_NE(Text.find("func main"), std::string::npos);
  EXPECT_NE(Text.find("consti"), std::string::npos);
  EXPECT_NE(Text.find("add"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormed) {
  Module M = makeTinyModule();
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  Module M;
  IRBuilder B(M);
  B.createFunction("main", 0);
  B.emitConstI(7); // no terminator
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, RejectsBadBranchTarget) {
  Module M;
  IRBuilder B(M);
  B.createFunction("main", 0);
  B.emitBr(99);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  Module M;
  IRBuilder B(M);
  B.createFunction("main", 0);
  Instruction I;
  I.Op = Opcode::Mov;
  I.Dst = 0;
  I.A = 500; // never allocated
  B.emit(I);
  B.emitRet();
  // Dst 0 is also unallocated in a zero-register function.
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, RejectsCallArityMismatch) {
  Module M;
  IRBuilder B(M);
  std::uint32_t Callee = B.createFunction("callee", 2);
  B.emitRet();
  B.createFunction("main", 0);
  std::uint16_t X = B.emitConstI(1);
  B.emitCall(Callee, {X}); // one arg, needs two
  B.emitRet();
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, RejectsDanglingArgs) {
  Module M;
  IRBuilder B(M);
  B.createFunction("main", 0);
  std::uint16_t X = B.emitConstI(1);
  Instruction Arg;
  Arg.Op = Opcode::Arg;
  Arg.A = X;
  Arg.Imm = 0;
  B.emit(Arg);
  B.emitRet(); // args never consumed by a call
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  Module M;
  IRBuilder B(M);
  B.createFunction("main", 0);
  // Force a terminator followed by more instructions via direct access.
  Instruction RetI;
  RetI.Op = Opcode::Ret;
  M.Functions[0].Blocks[0].Instructions.push_back(RetI);
  Instruction Nop;
  Nop.Op = Opcode::Nop;
  M.Functions[0].Blocks[0].Instructions.push_back(Nop);
  Instruction Ret2;
  Ret2.Op = Opcode::Ret;
  M.Functions[0].Blocks[0].Instructions.push_back(Ret2);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(IRBuilder, RegisterAllocationIsSequential) {
  Module M;
  IRBuilder B(M);
  B.createFunction("f", 3);
  EXPECT_EQ(B.newReg(), 3);
  EXPECT_EQ(B.newReg(), 4);
  EXPECT_EQ(M.Functions[0].NumRegs, 5u);
}
