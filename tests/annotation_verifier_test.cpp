//===- tests/annotation_verifier_test.cpp ----------------------------------==//
//
// The annotation lint layer: every module the annotator produces must pass
// verifyAnnotations (swept over the whole workload registry and fuzzed
// programs, at both annotation levels), and deliberately corrupted modules
// must be caught. Also covers the def-before-use and register-type checks
// added to ir::verifyModule.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "ir/AnnotationVerifier.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "jit/Annotator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::front;
using jrpm::testutil::makeMain;

namespace {

std::vector<ir::LoopAnnotationInfo>
annotationInfos(const analysis::ModuleAnalysis &MA) {
  std::vector<ir::LoopAnnotationInfo> Infos;
  for (const analysis::CandidateStl &C : MA.candidates())
    Infos.push_back({C.AnnotatedLocals});
  return Infos;
}

void expectCleanAtBothLevels(const ir::Module &M, const std::string &What) {
  analysis::ModuleAnalysis MA(M);
  std::vector<ir::LoopAnnotationInfo> Infos = annotationInfos(MA);
  for (jit::AnnotationLevel Level :
       {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized}) {
    jit::AnnotatedModule AM = jit::annotateModule(M, MA, Level);
    std::vector<std::string> Errors = ir::verifyAnnotations(AM.Module, Infos);
    EXPECT_TRUE(Errors.empty())
        << What << (Level == jit::AnnotationLevel::Base ? " (base): "
                                                        : " (optimized): ")
        << (Errors.empty() ? "" : Errors.front());
    // The instrumented module must also stay structurally valid.
    std::vector<std::string> Structural = ir::verifyModule(AM.Module);
    EXPECT_TRUE(Structural.empty())
        << What << ": " << (Structural.empty() ? "" : Structural.front());
  }
}

/// An annotated module of a simple two-level loop nest with a carried
/// (non-reduction) local, so lwl/swl annotations and watch lists exist.
struct AnnotatedFixture {
  ir::Module Plain;
  analysis::ModuleAnalysis MA;
  std::vector<ir::LoopAnnotationInfo> Infos;
  jit::AnnotatedModule AM;

  AnnotatedFixture()
      : Plain(makeMain(seq({
            assign("s", c(1)),
            forLoop("i", c(0), lt(v("i"), c(6)), 1,
                    forLoop("j", c(0), lt(v("j"), c(6)), 1,
                            assign("s", add(mul(v("s"), c(3)), v("j"))))),
            ret(v("s")),
        }))),
        MA(Plain), Infos(annotationInfos(MA)),
        AM(jit::annotateModule(Plain, MA, jit::AnnotationLevel::Base)) {}

  std::vector<std::string> verify() const {
    return ir::verifyAnnotations(AM.Module, Infos);
  }

  /// First instruction position with opcode \p Op.
  std::pair<std::uint32_t, std::uint32_t> find(ir::Opcode Op) {
    ir::Function &F = AM.Module.Functions[AM.Module.EntryFunction];
    for (std::uint32_t B = 0; B < F.numBlocks(); ++B)
      for (std::uint32_t I = 0; I < F.Blocks[B].Instructions.size(); ++I)
        if (F.Blocks[B].Instructions[I].Op == Op)
          return {B, I};
    ADD_FAILURE() << "opcode not present in annotated module";
    return {0, 0};
  }

  ir::Instruction &at(std::pair<std::uint32_t, std::uint32_t> Pos) {
    ir::Function &F = AM.Module.Functions[AM.Module.EntryFunction];
    return F.Blocks[Pos.first].Instructions[Pos.second];
  }
};

bool anyErrorContains(const std::vector<std::string> &Errors,
                      const std::string &Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Positive sweep: registry + fuzzed programs
//===----------------------------------------------------------------------===//

TEST(AnnotationVerifier, AllRegistryWorkloadsLintClean) {
  for (const workloads::Workload &W : workloads::allWorkloads())
    expectCleanAtBothLevels(W.Build(), W.Name);
}

TEST(AnnotationVerifier, FuzzedProgramsLintClean) {
  for (std::uint64_t Seed = 1; Seed <= 20; ++Seed) {
    ir::Module M = testutil::ProgramGenerator(Seed).generate();
    expectCleanAtBothLevels(M, "fuzz seed " + std::to_string(Seed));
  }
}

TEST(AnnotationVerifier, FixtureIsCleanBeforeCorruption) {
  AnnotatedFixture Fx;
  ASSERT_FALSE(Fx.Infos.empty());
  // The inner accumulator is a genuinely carried local, so at least one
  // loop watches a register — the negative tests below rely on this.
  bool AnyWatched = false;
  for (const ir::LoopAnnotationInfo &I : Fx.Infos)
    AnyWatched |= !I.AnnotatedLocals.empty();
  ASSERT_TRUE(AnyWatched);
  EXPECT_TRUE(Fx.verify().empty());
}

//===----------------------------------------------------------------------===//
// Negative tests: deliberately corrupted modules
//===----------------------------------------------------------------------===//

TEST(AnnotationVerifier, CatchesRemovedELoop) {
  AnnotatedFixture Fx;
  auto Pos = Fx.find(ir::Opcode::ELoop);
  ir::Function &F = Fx.AM.Module.Functions[Fx.AM.Module.EntryFunction];
  auto &Instrs = F.Blocks[Pos.first].Instructions;
  Instrs.erase(Instrs.begin() + Pos.second);
  EXPECT_FALSE(Fx.verify().empty());
}

TEST(AnnotationVerifier, CatchesWrongLocalCount) {
  AnnotatedFixture Fx;
  Fx.at(Fx.find(ir::Opcode::SLoop)).Imm2 += 1;
  EXPECT_TRUE(anyErrorContains(Fx.verify(), "declares"));
}

TEST(AnnotationVerifier, CatchesUnknownLoopId) {
  AnnotatedFixture Fx;
  Fx.at(Fx.find(ir::Opcode::SLoop)).Imm = 1000;
  EXPECT_TRUE(anyErrorContains(Fx.verify(), "unknown loop id"));
}

TEST(AnnotationVerifier, CatchesMismatchedEoi) {
  AnnotatedFixture Fx;
  Fx.at(Fx.find(ir::Opcode::Eoi)).Imm += 1;
  EXPECT_TRUE(anyErrorContains(Fx.verify(), "eoi"));
}

TEST(AnnotationVerifier, CatchesDuplicateSLoop) {
  AnnotatedFixture Fx;
  auto Pos = Fx.find(ir::Opcode::SLoop);
  ir::Function &F = Fx.AM.Module.Functions[Fx.AM.Module.EntryFunction];
  auto &Instrs = F.Blocks[Pos.first].Instructions;
  Instrs.insert(Instrs.begin() + Pos.second, Instrs[Pos.second]);
  EXPECT_TRUE(anyErrorContains(Fx.verify(), "already active"));
}

TEST(AnnotationVerifier, CatchesStrayLocalAnnotation) {
  AnnotatedFixture Fx;
  // An swl in the entry block, before any sloop: no loop watches it.
  ir::Function &F = Fx.AM.Module.Functions[Fx.AM.Module.EntryFunction];
  ir::Instruction Anno{};
  Anno.Op = ir::Opcode::SwlAnno;
  Anno.A = 0;
  auto &Entry = F.Blocks[0].Instructions;
  Entry.insert(Entry.begin(), Anno);
  EXPECT_TRUE(anyErrorContains(Fx.verify(), "outside any loop"));
}

TEST(AnnotationVerifier, CatchesMissingSwlCoverage) {
  AnnotatedFixture Fx;
  // Strip every swl: each watched local loses its store annotation.
  ir::Function &F = Fx.AM.Module.Functions[Fx.AM.Module.EntryFunction];
  for (ir::BasicBlock &BB : F.Blocks) {
    auto &Instrs = BB.Instructions;
    for (auto It = Instrs.begin(); It != Instrs.end();)
      It = It->Op == ir::Opcode::SwlAnno ? Instrs.erase(It) : It + 1;
  }
  EXPECT_TRUE(anyErrorContains(Fx.verify(), "no swl annotates"));
}

//===----------------------------------------------------------------------===//
// verifyModule extensions: def-before-use and register types
//===----------------------------------------------------------------------===//

TEST(ModuleVerifier, CatchesReadBeforeDefinition) {
  ir::Module M;
  ir::IRBuilder B(M);
  B.createFunction("main", 0);
  std::uint16_t One = B.emitConstI(1);
  std::uint16_t Undef = B.newReg();
  std::uint16_t Sum = B.emitBinary(ir::Opcode::Add, One, Undef);
  B.emitRet(Sum);
  M.finalize();
  EXPECT_TRUE(anyErrorContains(ir::verifyModule(M),
                               "may be read before any definition"));
}

TEST(ModuleVerifier, AcceptsDefinitionOnEveryPath) {
  // A diamond defining the register on both arms is fine at the join.
  ir::Module M;
  ir::IRBuilder B(M);
  B.createFunction("main", 0);
  std::uint32_t Then = B.newBlock(), Else = B.newBlock(),
                Join = B.newBlock();
  std::uint16_t C = B.emitConstI(1);
  std::uint16_t X = B.newReg();
  B.emitCondBr(C, Then, Else);
  B.setBlock(Then);
  B.emitConstIInto(X, 2);
  B.emitBr(Join);
  B.setBlock(Else);
  B.emitConstIInto(X, 3);
  B.emitBr(Join);
  B.setBlock(Join);
  B.emitRet(X);
  M.finalize();
  EXPECT_TRUE(ir::verifyModule(M).empty());
}

TEST(ModuleVerifier, CatchesOneArmedDefinition) {
  // Only one arm defines the register: the join may read garbage.
  ir::Module M;
  ir::IRBuilder B(M);
  B.createFunction("main", 0);
  std::uint32_t Then = B.newBlock(), Join = B.newBlock();
  std::uint16_t C = B.emitConstI(1);
  std::uint16_t X = B.newReg();
  B.emitCondBr(C, Then, Join);
  B.setBlock(Then);
  B.emitConstIInto(X, 2);
  B.emitBr(Join);
  B.setBlock(Join);
  B.emitRet(X);
  M.finalize();
  EXPECT_TRUE(anyErrorContains(ir::verifyModule(M),
                               "may be read before any definition"));
}

TEST(ModuleVerifier, CatchesIntegerFedToFloatOp) {
  ir::Module M;
  ir::IRBuilder B(M);
  B.createFunction("main", 0);
  std::uint16_t I = B.emitConstI(3); // definitely an integer bit pattern
  std::uint16_t F = B.emitConstF(1.5);
  std::uint16_t R = B.emitBinary(ir::Opcode::FAdd, I, F);
  B.emitRet(R);
  M.finalize();
  EXPECT_TRUE(
      anyErrorContains(ir::verifyModule(M), "used as float operand"));
}

TEST(ModuleVerifier, CatchesFloatUsedAsAddress) {
  ir::Module M;
  ir::IRBuilder B(M);
  B.createFunction("main", 0);
  std::uint16_t F = B.emitConstF(2.5);
  std::uint16_t V = B.emitLoad(F, ir::NoReg, 0);
  B.emitRet(V);
  M.finalize();
  EXPECT_TRUE(
      anyErrorContains(ir::verifyModule(M), "used as address base"));
}

TEST(ModuleVerifier, LoweredWorkloadsPassExtendedChecks) {
  // lowerProgram fatals on verifier errors, so Build() succeeding means
  // the module passed; assert explicitly anyway for the error text.
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    ir::Module M = W.Build();
    std::vector<std::string> Errors = ir::verifyModule(M);
    EXPECT_TRUE(Errors.empty())
        << W.Name << ": " << (Errors.empty() ? "" : Errors.front());
  }
}
