//===- tests/speedup_model_test.cpp - Equation 1 property tests ------------==//

#include "sim/Config.h"
#include "tracer/SpeedupModel.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::tracer;

namespace {

/// Builds stats for a loop of \p Threads iterations of size \p ThreadSize
/// with an arc of length \p ArcLen on every transition.
StlStats makeStats(std::uint64_t Threads, double ThreadSize, double ArcLen,
                   double ArcFreq = 1.0, double OverflowFreq = 0.0) {
  StlStats S;
  S.Entries = 1;
  S.Threads = Threads;
  S.Cycles = static_cast<std::uint64_t>(ThreadSize * Threads);
  std::uint64_t Arcs =
      static_cast<std::uint64_t>(ArcFreq * static_cast<double>(Threads - 1));
  S.CritArcsPrev = Arcs;
  S.CritLenPrev = static_cast<std::uint64_t>(ArcLen * Arcs);
  S.OverflowThreads =
      static_cast<std::uint64_t>(OverflowFreq * static_cast<double>(Threads));
  return S;
}

} // namespace

TEST(SpeedupModel, NoArcsApproachFullSpeedup) {
  sim::HydraConfig Cfg;
  StlStats S = makeStats(10000, 1000.0, 0.0, /*ArcFreq=*/0.0);
  SpeedupEstimate E = estimateSpeedup(S, Cfg);
  EXPECT_NEAR(E.BaseSpeedup, 4.0, 1e-9);
  EXPECT_GT(E.Speedup, 3.8); // overheads shave a little
}

TEST(SpeedupModel, PaperThreeQuarterRule) {
  // "We expect maximal speedup if the average critical arc length is at
  // least 3/4 the average thread size" (plus the store-to-load latency in
  // our timing-faithful variant).
  sim::HydraConfig Cfg;
  double T = 1000.0;
  double L = 0.75 * T + Cfg.StoreLoadCommCycles;
  StlStats S = makeStats(10000, T, L);
  SpeedupEstimate E = estimateSpeedup(S, Cfg);
  EXPECT_NEAR(E.BaseSpeedup, 4.0, 1e-6);
}

TEST(SpeedupModel, ShortArcsSerialize) {
  sim::HydraConfig Cfg;
  StlStats S = makeStats(10000, 1000.0, /*ArcLen=*/10.0);
  SpeedupEstimate E = estimateSpeedup(S, Cfg);
  // Offset is forced to T - L + comm = 1000: essentially serial.
  EXPECT_LT(E.BaseSpeedup, 1.05);
  EXPECT_LT(E.Speedup, 1.0); // overheads make it a slowdown
}

TEST(SpeedupModel, MonotonicInArcLength) {
  sim::HydraConfig Cfg;
  double Prev = 0.0;
  for (double L = 0; L <= 1000; L += 50) {
    SpeedupEstimate E = estimateSpeedup(makeStats(5000, 1000.0, L), Cfg);
    EXPECT_GE(E.BaseSpeedup + 1e-9, Prev);
    Prev = E.BaseSpeedup;
  }
}

TEST(SpeedupModel, OverflowDegradesTowardSerial) {
  sim::HydraConfig Cfg;
  SpeedupEstimate None =
      estimateSpeedup(makeStats(10000, 1000.0, 0.0, 0.0, 0.0), Cfg);
  SpeedupEstimate Half =
      estimateSpeedup(makeStats(10000, 1000.0, 0.0, 0.0, 0.5), Cfg);
  SpeedupEstimate All =
      estimateSpeedup(makeStats(10000, 1000.0, 0.0, 0.0, 1.0), Cfg);
  EXPECT_GT(None.EffectiveSpeedup, Half.EffectiveSpeedup);
  EXPECT_GT(Half.EffectiveSpeedup, All.EffectiveSpeedup);
  EXPECT_NEAR(All.EffectiveSpeedup, 1.0, 1e-9);
}

TEST(SpeedupModel, SmallLoopsSufferOverheads) {
  sim::HydraConfig Cfg;
  // 10 threads of 30 cycles: fixed overheads eat most of the gain
  // (50 startup/shutdown + 50 eoi cycles against 300 cycles of work).
  StlStats S = makeStats(10, 30.0, 0.0, 0.0);
  SpeedupEstimate E = estimateSpeedup(S, Cfg);
  EXPECT_LT(E.Speedup, 2.0);
  // Same shape, far more work per entry: overheads amortize.
  StlStats Big = makeStats(10000, 30.0, 0.0, 0.0);
  SpeedupEstimate EBig = estimateSpeedup(Big, Cfg);
  EXPECT_GT(EBig.Speedup, E.Speedup);
}

TEST(SpeedupModel, EmptyStatsAreNeutral) {
  sim::HydraConfig Cfg;
  StlStats S;
  SpeedupEstimate E = estimateSpeedup(S, Cfg);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.0);
}

// Property sweep: the estimate never exceeds the processor count and the
// estimated time is never below cycles/p.
struct SweepParams {
  double ThreadSize;
  double ArcFrac; // arc length as a fraction of thread size
  double ArcFreq;
  double OverflowFreq;
};

class SpeedupSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(SpeedupSweep, BoundsHold) {
  const SweepParams &P = GetParam();
  sim::HydraConfig Cfg;
  StlStats S = makeStats(4000, P.ThreadSize, P.ArcFrac * P.ThreadSize,
                         P.ArcFreq, P.OverflowFreq);
  SpeedupEstimate E = estimateSpeedup(S, Cfg);
  EXPECT_GT(E.Speedup, 0.0);
  EXPECT_LE(E.BaseSpeedup, 4.0 + 1e-9);
  EXPECT_GE(E.SpecCycles,
            static_cast<double>(S.Cycles) / 4.0 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpeedupSweep,
    ::testing::Values(SweepParams{50, 0.0, 0.0, 0.0},
                      SweepParams{50, 0.5, 1.0, 0.0},
                      SweepParams{200, 0.25, 0.5, 0.1},
                      SweepParams{200, 0.9, 1.0, 0.0},
                      SweepParams{1000, 0.75, 1.0, 0.0},
                      SweepParams{1000, 0.1, 0.2, 0.9},
                      SweepParams{20000, 0.5, 0.7, 0.3},
                      SweepParams{20000, 1.0, 1.0, 1.0}));

TEST(SpeedupModel, EarlierBinArcsHurtLessThanPrevBin) {
  // An arc of the same length two threads back constrains the pipeline
  // half as much as one to the immediately preceding thread.
  sim::HydraConfig Cfg;
  StlStats Prev = makeStats(5000, 1000.0, 300.0, 1.0);
  StlStats Earlier;
  Earlier.Entries = 1;
  Earlier.Threads = 5000;
  Earlier.Cycles = 5000 * 1000;
  Earlier.CritArcsEarlier = 4999;
  Earlier.CritLenEarlier = 4999 * 300;
  SpeedupEstimate EPrev = estimateSpeedup(Prev, Cfg);
  SpeedupEstimate EEarlier = estimateSpeedup(Earlier, Cfg);
  EXPECT_GT(EEarlier.BaseSpeedup, EPrev.BaseSpeedup);
}
