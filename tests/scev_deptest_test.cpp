//===- tests/scev_deptest_test.cpp - Affine analysis + oracle unit tests ---==//
//
// Exercises the static dependence-testing stack bottom-up: the checked
// affine arithmetic, LoopScev forms over hand-built loops, the classical
// pair tests (ZIV / strong SIV / weak-zero SIV / GCD) with their signed
// distances, the per-function memory-effect summaries, the static
// speculation oracle's three verdicts, and the induction-classification
// edge cases the oracle's soundness leans on.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "analysis/DepTest.h"
#include "analysis/MemDep.h"
#include "analysis/ScalarEvolution.h"
#include "analysis/StaticOracle.h"
#include "ir/Opcode.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

using namespace jrpm;
using namespace jrpm::analysis;
using namespace jrpm::front;
using jrpm::testutil::makeMain;

namespace {

const ir::Function &mainFunc(const ir::Module &M) {
  return M.Functions[M.EntryFunction];
}

std::uint16_t localReg(const ir::Function &F, const std::string &Name) {
  for (const auto &[N, Reg] : F.NamedLocals)
    if (N == Name)
      return Reg;
  ADD_FAILURE() << "no local named " << Name;
  return ir::NoReg;
}

/// Finds the Nth instruction with opcode \p Op; returns {block, index}.
std::pair<std::uint32_t, std::uint32_t> findOp(const ir::Function &F,
                                               ir::Opcode Op,
                                               std::uint32_t Skip = 0) {
  for (std::uint32_t B = 0; B < F.numBlocks(); ++B)
    for (std::uint32_t I = 0; I < F.Blocks[B].Instructions.size(); ++I)
      if (F.Blocks[B].Instructions[I].Op == Op) {
        if (Skip == 0)
          return {B, I};
        --Skip;
      }
  ADD_FAILURE() << "opcode not found";
  return {0, 0};
}

/// Everything the affine layer needs about main()'s single loop.
struct LoopFixture {
  ir::Module M;
  FunctionAnalysis FA;
  std::vector<FuncMemEffects> Effects;

  explicit LoopFixture(St Body)
      : M(makeMain(std::move(Body))), FA(mainFunc(M)),
        Effects(computeMemEffects(M)) {
    EXPECT_GE(FA.LI.loops().size(), 1u);
  }

  const ir::Function &func() const { return mainFunc(M); }
  const Loop &loop(std::uint32_t Idx = 0) const { return FA.LI.loops()[Idx]; }
  const InductionInfo &scalars(std::uint32_t Idx = 0) const {
    return FA.LoopScalars[Idx];
  }
  LoopScev scev(std::uint32_t Idx = 0) const {
    return LoopScev(func(), loop(Idx), scalars(Idx));
  }
  LoopOracleResult oracle(std::uint32_t Budget,
                          std::uint32_t Idx = 0) const {
    return runStaticOracle(func(), loop(Idx), scalars(Idx),
                           FA.MemDep->aliases(), Effects, Budget);
  }
};

/// Affine form with no symbolic part: Const + Stride * i.
AffineExpr affine(std::int64_t Const, std::int64_t Stride) {
  AffineExpr E;
  E.Valid = true;
  E.Const = Const;
  E.IterCoeff = Stride;
  return E;
}

/// while (heap[p] < 50) { heap[p] = heap[p] + 1; extra }
St serialRecurrenceLoop(St ExtraAfterStore = St()) {
  std::vector<St> Body;
  Body.push_back(store(v("p"), Ex(), 0, add(ld(v("p")), c(1))));
  if (ExtraAfterStore.valid())
    Body.push_back(std::move(ExtraAfterStore));
  return seq({
      assign("p", allocWords(c(8))),
      store(v("p"), Ex(), 0, c(0)),
      whileLoop(lt(ld(v("p")), c(50)), seq(std::move(Body))),
      ret(ld(v("p"))),
  });
}

} // namespace

//===----------------------------------------------------------------------===//
// Checked affine arithmetic
//===----------------------------------------------------------------------===//

TEST(AffineArith, AddDetectsWrap) {
  std::int64_t Out = 0;
  EXPECT_TRUE(affineAdd(40, 2, Out));
  EXPECT_EQ(Out, 42);
  EXPECT_TRUE(affineAdd(INT64_MAX, 0, Out));
  EXPECT_FALSE(affineAdd(INT64_MAX, 1, Out));
  EXPECT_FALSE(affineAdd(INT64_MIN, -1, Out));
}

TEST(AffineArith, MulDetectsWrap) {
  std::int64_t Out = 0;
  EXPECT_TRUE(affineMul(-7, 6, Out));
  EXPECT_EQ(Out, -42);
  EXPECT_FALSE(affineMul(INT64_MAX, 2, Out));
  EXPECT_FALSE(affineMul(std::int64_t(1) << 40, std::int64_t(1) << 40, Out));
  EXPECT_TRUE(affineMul(INT64_MIN, 1, Out));
  EXPECT_FALSE(affineMul(INT64_MIN, -1, Out));
}

//===----------------------------------------------------------------------===//
// LoopScev forms
//===----------------------------------------------------------------------===//

TEST(Scev, ForLoopStoreAddressIsAffine) {
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              store(v("a"), v("i"), 0, v("i"))),
      ret(c(0)),
  }));
  LoopScev Scev = FX.scev();
  auto [SB, SI] = findOp(FX.func(), ir::Opcode::Store);
  AffineExpr E = Scev.addressAt(
      FX.func().Blocks[SB].Instructions[SI], SB, SI);
  ASSERT_TRUE(E.Valid);
  EXPECT_EQ(E.IterCoeff, 1);
  EXPECT_EQ(E.Const, 0);
  std::uint16_t A = localReg(FX.func(), "a");
  std::uint16_t I = localReg(FX.func(), "i");
  ASSERT_EQ(E.Symbols.size(), 2u);
  EXPECT_EQ(E.Symbols.at(A), 1);
  EXPECT_EQ(E.Symbols.at(I), 1);
}

TEST(Scev, InductorReadsExtraStepAfterItsUpdate) {
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(50)), 3,
              store(v("a"), v("i"), 0, c(7))),
      ret(c(0)),
  }));
  LoopScev Scev = FX.scev();
  std::uint16_t I = localReg(FX.func(), "i");
  // The only AddImm inside the loop is the step update in the latch.
  auto [UB, UI] = findOp(FX.func(), ir::Opcode::AddImm);
  AffineExpr Before = Scev.valueAt(I, UB, UI);
  ASSERT_TRUE(Before.Valid);
  EXPECT_EQ(Before.Const, 0);
  EXPECT_EQ(Before.IterCoeff, 3);
  AffineExpr After = Scev.valueAt(I, UB, UI + 1);
  ASSERT_TRUE(After.Valid);
  EXPECT_EQ(After.Const, 3); // one extra step past the update
  EXPECT_EQ(After.IterCoeff, 3);
  EXPECT_EQ(After.Symbols.at(I), 1);
}

TEST(Scev, TempChainsFoldThroughMulShiftAdd) {
  LoopFixture FX(seq({
      assign("a", allocWords(c(256))),
      forLoop("i", c(0), lt(v("i"), c(20)), 1,
              seq({
                  assign("t", add(mul(v("i"), c(4)), c(2))),
                  assign("u", shl(v("i"), c(3))),
                  store(v("a"), v("t"), 0, c(1)),
                  store(v("a"), v("u"), 1, c(2)),
              })),
      ret(c(0)),
  }));
  LoopScev Scev = FX.scev();
  std::uint16_t A = localReg(FX.func(), "a");

  auto [S0B, S0I] = findOp(FX.func(), ir::Opcode::Store, 0);
  AffineExpr T = Scev.addressAt(FX.func().Blocks[S0B].Instructions[S0I],
                                S0B, S0I);
  ASSERT_TRUE(T.Valid);
  EXPECT_EQ(T.IterCoeff, 4);
  EXPECT_EQ(T.Const, 2);
  EXPECT_EQ(T.Symbols.at(A), 1);

  auto [S1B, S1I] = findOp(FX.func(), ir::Opcode::Store, 1);
  AffineExpr U = Scev.addressAt(FX.func().Blocks[S1B].Instructions[S1I],
                                S1B, S1I);
  ASSERT_TRUE(U.Valid);
  EXPECT_EQ(U.IterCoeff, 8);
  EXPECT_EQ(U.Const, 1);
}

TEST(Scev, ConditionalDefinitionIsNotAffine) {
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      assign("t", c(0)),
      forLoop("i", c(0), lt(v("i"), c(20)), 1,
              seq({
                  iff(lt(v("i"), c(10)), assign("t", v("i"))),
                  store(v("a"), v("t"), 0, c(1)),
              })),
      ret(c(0)),
  }));
  LoopScev Scev = FX.scev();
  auto [SB, SI] = findOp(FX.func(), ir::Opcode::Store);
  AffineExpr E = Scev.addressAt(FX.func().Blocks[SB].Instructions[SI],
                                SB, SI);
  EXPECT_FALSE(E.Valid);
}

TEST(Scev, MaskedIndexAndMemoryValuesAreNotAffine) {
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(20)), 1,
              seq({
                  assign("m", band(v("i"), c(63))),
                  assign("x", ld(v("a"), v("i"))),
                  store(v("a"), v("m"), 0, v("x")),
              })),
      ret(c(0)),
  }));
  LoopScev Scev = FX.scev();
  auto [SB, SI] = findOp(FX.func(), ir::Opcode::Store);
  AffineExpr Addr = Scev.addressAt(FX.func().Blocks[SB].Instructions[SI],
                                   SB, SI);
  EXPECT_FALSE(Addr.Valid); // index masked by And
  std::uint16_t X = localReg(FX.func(), "x");
  AffineExpr Val = Scev.valueAt(X, SB, SI);
  EXPECT_FALSE(Val.Valid); // value escaped through memory
}

//===----------------------------------------------------------------------===//
// Pair tests
//===----------------------------------------------------------------------===//

TEST(DepTest, ZivSameCellCollidesEveryIteration) {
  DepTestResult R = testAffinePair(affine(5, 0), affine(5, 0));
  EXPECT_EQ(R.Test, DepTestKind::Ziv);
  EXPECT_EQ(R.Outcome, DepOutcome::Carried);
  EXPECT_TRUE(R.DistanceExact);
  EXPECT_EQ(R.Distance, 1);
}

TEST(DepTest, ZivDifferentCellsNeverCollide) {
  DepTestResult R = testAffinePair(affine(5, 0), affine(6, 0));
  EXPECT_EQ(R.Test, DepTestKind::Ziv);
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);
}

TEST(DepTest, StrongSivExactSignedDistance) {
  // X(i) = 4 + 2i meets Y(j) = 2j at j = i + 2.
  DepTestResult R = testAffinePair(affine(4, 2), affine(0, 2));
  EXPECT_EQ(R.Test, DepTestKind::StrongSiv);
  EXPECT_EQ(R.Outcome, DepOutcome::Carried);
  EXPECT_TRUE(R.DistanceExact);
  EXPECT_EQ(R.Distance, 2);

  // Swapping operands flips the sign.
  R = testAffinePair(affine(0, 2), affine(4, 2));
  EXPECT_EQ(R.Outcome, DepOutcome::Carried);
  EXPECT_EQ(R.Distance, -2);

  // Negative strides: X(i) = 3 - 3i meets Y(j) = -3j at j = i - 1.
  R = testAffinePair(affine(3, -3), affine(0, -3));
  EXPECT_EQ(R.Outcome, DepOutcome::Carried);
  EXPECT_EQ(R.Distance, -1);
}

TEST(DepTest, StrongSivLatticesNeverMeet) {
  DepTestResult R = testAffinePair(affine(3, 2), affine(0, 2));
  EXPECT_EQ(R.Test, DepTestKind::StrongSiv);
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);
  // Same iteration only (gap 0) is not a cross-iteration dependence.
  R = testAffinePair(affine(0, 2), affine(0, 2));
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);
}

TEST(DepTest, WeakZeroSivSingleHit) {
  // Fixed X = 6, moving Y(j) = 2j: hits only at j = 3.
  DepTestResult R = testAffinePair(affine(6, 0), affine(0, 2));
  EXPECT_EQ(R.Test, DepTestKind::WeakZeroSiv);
  EXPECT_EQ(R.Outcome, DepOutcome::Carried);
  EXPECT_FALSE(R.DistanceExact);

  // Hit iteration would be negative: never reached.
  R = testAffinePair(affine(-2, 0), affine(0, 2));
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);

  // No integer solution.
  R = testAffinePair(affine(5, 0), affine(0, 2));
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);

  // Same answers with the moving access first.
  R = testAffinePair(affine(0, 2), affine(6, 0));
  EXPECT_EQ(R.Test, DepTestKind::WeakZeroSiv);
  EXPECT_EQ(R.Outcome, DepOutcome::Carried);
  R = testAffinePair(affine(0, 2), affine(-2, 0));
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);
}

TEST(DepTest, GcdFeasibility) {
  // gcd(4, 6) = 2 does not divide 1: independent.
  DepTestResult R = testAffinePair(affine(1, 4), affine(0, 6));
  EXPECT_EQ(R.Test, DepTestKind::Gcd);
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);
  // ... but divides 2: possibly dependent, distance unknown.
  R = testAffinePair(affine(2, 4), affine(0, 6));
  EXPECT_EQ(R.Outcome, DepOutcome::Carried);
  EXPECT_FALSE(R.DistanceExact);
}

TEST(DepTest, OffsetGapOverflowFallsBackToMay) {
  DepTestResult R = testAffinePair(affine(INT64_MAX, 1), affine(-2, 1));
  EXPECT_EQ(R.Outcome, DepOutcome::May);
}

TEST(DepTest, FallbackUsesAliasClasses) {
  AffineExpr Bad; // invalid
  AliasSet Scalar;                 // empty, known: a pure scalar address
  AliasSet Heap;
  Heap.Unknown = true;

  DepTestResult R = testWithFallback(Bad, Bad, Scalar, Scalar);
  EXPECT_EQ(R.Test, DepTestKind::AliasClass);
  EXPECT_EQ(R.Outcome, DepOutcome::Independent);

  R = testWithFallback(Bad, Bad, Heap, Scalar);
  EXPECT_EQ(R.Test, DepTestKind::MayFallback);
  EXPECT_EQ(R.Outcome, DepOutcome::May);

  // Affine forms over different symbolic bases also fall back.
  AffineExpr X = affine(0, 1);
  AffineExpr Y = affine(0, 1);
  Y.Symbols[7] = 1;
  R = testWithFallback(X, Y, Heap, Heap);
  EXPECT_EQ(R.Test, DepTestKind::MayFallback);
  EXPECT_EQ(R.Outcome, DepOutcome::May);
}

//===----------------------------------------------------------------------===//
// Stable-name round trips
//===----------------------------------------------------------------------===//

TEST(Names, RejectKindRoundTrip) {
  std::set<std::string> Seen;
  for (RejectKind K : AllRejectKinds) {
    std::string Name = rejectKindName(K);
    EXPECT_TRUE(Seen.insert(Name).second) << "duplicate name " << Name;
    RejectKind Back = RejectKind::None;
    ASSERT_TRUE(rejectKindFromName(Name, Back)) << Name;
    EXPECT_EQ(Back, K);
  }
  RejectKind Out = RejectKind::None;
  EXPECT_FALSE(rejectKindFromName("no-such-kind", Out));
}

TEST(Names, DepAndOracleNamesAreStableAndUnique) {
  std::set<std::string> Tests;
  for (DepTestKind K :
       {DepTestKind::Ziv, DepTestKind::StrongSiv, DepTestKind::WeakZeroSiv,
        DepTestKind::Gcd, DepTestKind::AliasClass, DepTestKind::MayFallback})
    EXPECT_TRUE(Tests.insert(depTestKindName(K)).second);
  std::set<std::string> Outcomes;
  for (DepOutcome O :
       {DepOutcome::Independent, DepOutcome::Carried, DepOutcome::May})
    EXPECT_TRUE(Outcomes.insert(depOutcomeName(O)).second);
  std::set<std::string> Kinds;
  for (DepKind K : {DepKind::Raw, DepKind::War, DepKind::Waw, DepKind::May})
    EXPECT_TRUE(Kinds.insert(depKindName(K)).second);
  std::set<std::string> Verdicts;
  for (OracleVerdict V :
       {OracleVerdict::Unknown, OracleVerdict::ProvablySerial,
        OracleVerdict::ProvablyParallel})
    EXPECT_TRUE(Verdicts.insert(oracleVerdictName(V)).second);
  EXPECT_STREQ(oracleVerdictName(OracleVerdict::ProvablySerial),
               "provably-serial");
}

//===----------------------------------------------------------------------===//
// Memory-effect summaries
//===----------------------------------------------------------------------===//

TEST(MemEffects, DirectAndTransitiveSummaries) {
  ProgramDef P;
  P.Functions.push_back({"pureFn", {"x"}, ret(add(v("x"), c(1)))});
  P.Functions.push_back({"reader", {"p"}, ret(ld(v("p")))});
  P.Functions.push_back(
      {"writer", {"p"}, seq({store(v("p"), Ex(), 0, c(1)), ret(c(0))})});
  P.Functions.push_back({"alloc8", {}, ret(allocWords(c(8)))});
  P.Functions.push_back({"outer", {"p"}, ret(call("writer", {v("p")}))});
  P.Functions.push_back({"main", {}, ret(call("pureFn", {c(1)}))});
  ir::Module M = lowerProgram(P);

  std::vector<FuncMemEffects> E = computeMemEffects(M);
  ASSERT_EQ(E.size(), M.Functions.size());
  auto Fx = [&](const char *Name) {
    int I = M.findFunction(Name);
    EXPECT_GE(I, 0) << Name;
    return E[static_cast<std::uint32_t>(I)];
  };
  EXPECT_TRUE(Fx("pureFn").pure());
  EXPECT_TRUE(Fx("reader").ReadsHeap);
  EXPECT_TRUE(Fx("reader").readOnly());
  EXPECT_TRUE(Fx("writer").WritesHeap);
  EXPECT_FALSE(Fx("writer").Allocates);
  EXPECT_TRUE(Fx("alloc8").Allocates);
  // outer writes only through its callee.
  EXPECT_TRUE(Fx("outer").WritesHeap);
  EXPECT_FALSE(Fx("outer").ReadsHeap);
}

//===----------------------------------------------------------------------===//
// The static oracle
//===----------------------------------------------------------------------===//

TEST(StaticOracle, CanonicalRecurrenceIsProvablySerial) {
  LoopFixture FX(serialRecurrenceLoop());
  LoopOracleResult R = FX.oracle(/*Budget=*/10);
  EXPECT_EQ(R.Verdict, OracleVerdict::ProvablySerial);
  EXPECT_EQ(R.Test, DepTestKind::Ziv);
  EXPECT_EQ(R.Distance, 1);
  EXPECT_GT(R.WindowCycles, 0u);
  EXPECT_LE(R.WindowCycles, 10u);
}

TEST(StaticOracle, BudgetBoundsTheSerialVerdict) {
  LoopFixture FX(serialRecurrenceLoop());
  LoopOracleResult R = FX.oracle(/*Budget=*/10);
  ASSERT_EQ(R.Verdict, OracleVerdict::ProvablySerial);
  // One cycle below the measured window the proof must fail.
  LoopOracleResult Tight = FX.oracle(R.WindowCycles - 1);
  EXPECT_EQ(Tight.Verdict, OracleVerdict::Unknown);
}

TEST(StaticOracle, ExpensiveTailBreaksTheWindow) {
  LoopFixture FX(serialRecurrenceLoop(
      assign("waste", sdiv(c(100), c(7)))));
  LoopOracleResult R = FX.oracle(/*Budget=*/10);
  EXPECT_EQ(R.Verdict, OracleVerdict::Unknown);
}

TEST(StaticOracle, SivDistanceOneRecurrence) {
  // a[i] = a[i-1] + 1: serial, but the store address is not invariant,
  // so the shape-matched pre-filter rule can never see it.
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      store(v("a"), Ex(), 0, c(1)),
      forLoop("i", c(1), lt(v("i"), c(50)), 1,
              store(v("a"), v("i"), 0,
                    add(ld(v("a"), v("i"), -1), c(1)))),
      ret(ld(v("a"), Ex(), 49)),
  }));
  LoopOracleResult R = FX.oracle(/*Budget=*/32);
  EXPECT_EQ(R.Verdict, OracleVerdict::ProvablySerial);
  EXPECT_EQ(R.Test, DepTestKind::StrongSiv);
  EXPECT_EQ(R.Distance, 1);
}

TEST(StaticOracle, StrideTwoAccessesAreProvablyParallel) {
  // Reads a[2i+1], writes a[2i]: strong SIV separates the lattices where
  // the register-pair heuristic of MemDep only sees "may".
  LoopFixture FX(seq({
      assign("a", allocWords(c(128))),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              seq({
                  assign("t", mul(v("i"), c(2))),
                  store(v("a"), v("t"), 0, ld(v("a"), v("t"), 1)),
              })),
      ret(c(0)),
  }));
  LoopOracleResult R = FX.oracle(/*Budget=*/10);
  EXPECT_EQ(R.Verdict, OracleVerdict::ProvablyParallel);
  EXPECT_GT(R.TotalPairs, 0u);
  EXPECT_EQ(R.MayPairs, 0u);
  EXPECT_EQ(R.IndependentPairs, R.TotalPairs);
}

TEST(StaticOracle, PureCalleeKeepsParallelVerdict) {
  ProgramDef P;
  P.Functions.push_back({"f", {"x"}, ret(mul(v("x"), v("x")))});
  P.Functions.push_back(
      {"main",
       {},
       seq({
           assign("a", allocWords(c(64))),
           forLoop("i", c(0), lt(v("i"), c(50)), 1,
                   store(v("a"), v("i"), 0, call("f", {v("i")}))),
           ret(c(0)),
       })});
  ir::Module M = lowerProgram(P);
  const ir::Function &F = mainFunc(M);
  FunctionAnalysis FA(F);
  ASSERT_EQ(FA.LI.loops().size(), 1u);
  std::vector<FuncMemEffects> Effects = computeMemEffects(M);
  LoopOracleResult R =
      runStaticOracle(F, FA.LI.loops()[0], FA.LoopScalars[0],
                      FA.MemDep->aliases(), Effects, 10);
  EXPECT_EQ(R.Verdict, OracleVerdict::ProvablyParallel);
}

TEST(StaticOracle, ConditionalLoadIsNotProvablySerial) {
  // The reload is guarded: some iterations never read the cell, so the
  // serial proof must not fire even though the pair is ZIV-carried.
  LoopFixture FX(seq({
      assign("p", allocWords(c(8))),
      assign("q", allocWords(c(8))),
      store(v("p"), Ex(), 0, c(0)),
      assign("i", c(0)),
      whileLoop(lt(v("i"), c(50)),
                seq({
                    assign("x", c(0)),
                    iff(lt(ld(v("q")), c(5)),
                        assign("x", ld(v("p")))),
                    store(v("p"), Ex(), 0, add(v("x"), c(1))),
                    assign("i", add(v("i"), c(1))),
                })),
      ret(ld(v("p"))),
  }));
  LoopOracleResult R = FX.oracle(/*Budget=*/64);
  EXPECT_NE(R.Verdict, OracleVerdict::ProvablySerial);
}

TEST(StaticOracle, SecondStoreToSameCellBlocksTheProof) {
  // A second may-colliding store means the reload might see the same
  // iteration's value instead of the cross-iteration arc.
  LoopFixture FX(serialRecurrenceLoop(
      store(v("p"), Ex(), 0, c(9))));
  LoopOracleResult R = FX.oracle(/*Budget=*/64);
  EXPECT_NE(R.Verdict, OracleVerdict::ProvablySerial);
}

TEST(StaticOracle, StoreOutsideLatchBlockStillProved) {
  // The store sits in the body-entry block, which iter-dominates the
  // latch but is not the latch: invisible to the pre-filter's
  // latch-seeded rule, provable by the oracle — inside the default
  // forwarding budget, which the conformance synthetics rely on.
  LoopFixture FX(seq({
      assign("p", allocWords(c(8))),
      assign("g", c(0)),
      store(v("p"), Ex(), 0, c(0)),
      whileLoop(lt(ld(v("p")), c(50)),
                seq({
                    store(v("p"), Ex(), 0, add(ld(v("p")), c(1))),
                    iff(v("g"), exprStmt(c(0))),
                })),
      ret(ld(v("p"))),
  }));
  LoopOracleResult R = FX.oracle(/*Budget=*/10);
  EXPECT_EQ(R.Verdict, OracleVerdict::ProvablySerial);
  EXPECT_EQ(R.Test, DepTestKind::Ziv);
  EXPECT_LE(R.WindowCycles, 10u);

  // The pre-filter indeed misses this shape; the oracle flag rejects it.
  AnalysisOptions Pre;
  Pre.StaticPrefilter = true;
  ModuleAnalysis PreMA(FX.M, Pre);
  ASSERT_EQ(PreMA.candidates().size(), 1u);
  EXPECT_FALSE(PreMA.candidates()[0].Rejected);

  AnalysisOptions Orc;
  Orc.AffineOracle = true;
  ModuleAnalysis OrcMA(FX.M, Orc);
  ASSERT_EQ(OrcMA.candidates().size(), 1u);
  EXPECT_TRUE(OrcMA.candidates()[0].Rejected);
  EXPECT_EQ(OrcMA.candidates()[0].Kind, RejectKind::AffineSerialZiv);
  ASSERT_NE(OrcMA.oracleResult(0), nullptr);
  EXPECT_EQ(OrcMA.oracleResult(0)->Verdict, OracleVerdict::ProvablySerial);
}

TEST(StaticOracle, OracleFlagSubsumesThePrefilter) {
  // The canonical shape is caught by both rules; under the oracle flag it
  // keeps the pre-filter's reject kind (the shape rule runs first).
  LoopFixture FX(serialRecurrenceLoop());
  AnalysisOptions Orc;
  Orc.AffineOracle = true;
  ModuleAnalysis MA(FX.M, Orc);
  ASSERT_EQ(MA.candidates().size(), 1u);
  EXPECT_TRUE(MA.candidates()[0].Rejected);
  EXPECT_EQ(MA.candidates()[0].Kind, RejectKind::SerialMemoryRecurrence);
}

//===----------------------------------------------------------------------===//
// Induction-classification edge cases
//===----------------------------------------------------------------------===//

TEST(InductionEdge, NegativeStrideIsAnInductor) {
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(49), ge(v("i"), c(0)), -1,
              store(v("a"), v("i"), 0, v("i"))),
      ret(c(0)),
  }));
  std::uint16_t I = localReg(FX.func(), "i");
  ASSERT_EQ(FX.scalars().Inductors.count(I), 1u);
  EXPECT_EQ(FX.scalars().Inductors.at(I), -1);

  // ... and its affine form carries the negative stride.
  LoopScev Scev = FX.scev();
  auto [SB, SI] = findOp(FX.func(), ir::Opcode::Store);
  AffineExpr E = Scev.addressAt(FX.func().Blocks[SB].Instructions[SI],
                                SB, SI);
  ASSERT_TRUE(E.Valid);
  EXPECT_EQ(E.IterCoeff, -1);
}

TEST(InductionEdge, FloatSumReductionOrdering) {
  // s = x + s and s = s + x are both sum reductions; s = x - s reverses
  // the operands of a non-commutative op and must stay loop-carried.
  LoopFixture Fwd(seq({
      assign("a", allocWords(c(64))),
      assign("s", cf(0.0)),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              assign("s", fadd(ld(v("a"), v("i")), v("s")))),
      ret(ftoi(v("s"))),
  }));
  std::uint16_t S = localReg(Fwd.func(), "s");
  ASSERT_EQ(Fwd.scalars().Reductions.count(S), 1u);
  EXPECT_EQ(Fwd.scalars().Reductions.at(S), ReductionKind::SumFloat);

  LoopFixture Rev(seq({
      assign("a", allocWords(c(64))),
      assign("s", cf(0.0)),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              assign("s", fsub(ld(v("a"), v("i")), v("s")))),
      ret(ftoi(v("s"))),
  }));
  std::uint16_t S2 = localReg(Rev.func(), "s");
  EXPECT_EQ(Rev.scalars().Reductions.count(S2), 0u);
  EXPECT_EQ(std::count(Rev.scalars().OtherCarried.begin(),
                       Rev.scalars().OtherCarried.end(), S2),
            1);
}

TEST(InductionEdge, IntSubtractionIsASumReduction) {
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      assign("s", c(1000)),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              assign("s", sub(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  }));
  std::uint16_t S = localReg(FX.func(), "s");
  ASSERT_EQ(FX.scalars().Reductions.count(S), 1u);
  EXPECT_EQ(FX.scalars().Reductions.at(S), ReductionKind::SumInt);
}

TEST(InductionEdge, StrideUpdateAfterUseKeepsInductor) {
  // The use sits before the update: still a basic inductor, and the use
  // site reads the pre-update value (no extra step).
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      assign("i", c(0)),
      whileLoop(lt(v("i"), c(50)),
                seq({
                    store(v("a"), v("i"), 0, c(1)),
                    assign("i", add(v("i"), c(1))),
                })),
      ret(c(0)),
  }));
  std::uint16_t I = localReg(FX.func(), "i");
  ASSERT_EQ(FX.scalars().Inductors.count(I), 1u);
  EXPECT_EQ(FX.scalars().Inductors.at(I), 1);
  LoopScev Scev = FX.scev();
  auto [SB, SI] = findOp(FX.func(), ir::Opcode::Store);
  AffineExpr E = Scev.addressAt(FX.func().Blocks[SB].Instructions[SI],
                                SB, SI);
  ASSERT_TRUE(E.Valid);
  EXPECT_EQ(E.Const, 0);
  EXPECT_EQ(E.IterCoeff, 1);
}

TEST(InductionEdge, WraparoundCounterStaysAnInductor) {
  // Induction classification is syntactic (AddImm self-step); the affine
  // layer is where wrap hurts, and the i64 coefficients cannot overflow
  // from a step of 1 — but a huge multiplier must invalidate the form.
  LoopFixture FX(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              seq({
                  assign("t", mul(mul(v("i"), c(std::int64_t(1) << 40)),
                                  c(std::int64_t(1) << 40))),
                  store(v("a"), v("t"), 0, c(1)),
              })),
      ret(c(0)),
  }));
  std::uint16_t I = localReg(FX.func(), "i");
  EXPECT_EQ(FX.scalars().Inductors.count(I), 1u);
  LoopScev Scev = FX.scev();
  auto [SB, SI] = findOp(FX.func(), ir::Opcode::Store);
  AffineExpr E = Scev.addressAt(FX.func().Blocks[SB].Instructions[SI],
                                SB, SI);
  EXPECT_FALSE(E.Valid); // 2^40 * 2^40 wraps the coefficient
}
