//===- tests/exec_test.cpp - CodeImage / flat execution tests --------------==//
//
// Covers the pre-decoded execution image (layout, target resolution,
// digest-keyed sharing), the flat-PC ExecContext surface the TLS engine
// depends on (startAt with an oversized register file, rewindTop re-issue,
// repositionTop at a loop exit), deterministic divide-by-zero traps, and
// step()/stepBlock() equivalence on random programs.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "exec/CodeImage.h"
#include "interp/Trap.h"
#include "jit/TlsPlan.h"
#include "metrics/Metrics.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::front;
using jrpm::testutil::makeMain;
using jrpm::testutil::runModule;

namespace {

ir::Module makeCallProgram() {
  ProgramDef P;
  FuncDef Helper;
  Helper.Name = "mix";
  Helper.Params = {"a", "b"};
  Helper.Body = seq({
      iff(lt(v("a"), v("b")), ret(sub(v("b"), v("a")))),
      ret(add(mul(v("a"), c(3)), v("b"))),
  });
  FuncDef Main;
  Main.Body = seq({
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(8)), 1,
              assign("s", add(v("s"), call("mix", {v("i"), c(5)})))),
      ret(v("s")),
  });
  Main.Name = "main";
  P.Functions.push_back(std::move(Helper));
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}

} // namespace

TEST(CodeImage, LayoutMatchesModule) {
  ir::Module M = makeCallProgram();
  M.finalize();
  exec::CodeImage Img(M);

  std::uint32_t TotalInsts = 0, TotalBlocks = 0;
  for (const ir::Function &F : M.Functions) {
    TotalBlocks += F.Blocks.size();
    for (const ir::BasicBlock &BB : F.Blocks)
      TotalInsts += BB.Instructions.size();
  }
  ASSERT_EQ(Img.numInsts(), TotalInsts);
  ASSERT_EQ(Img.numBlocks(), TotalBlocks);
  ASSERT_EQ(Img.numFuncs(), M.Functions.size());

  // For a finalized module the flat PC equals the tracer PC, every operand
  // field survives decoding, and exactly the first instruction of each
  // block carries the block-start flag.
  exec::FlatPc Pc = 0;
  for (std::uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    const ir::Function &F = M.Functions[FI];
    EXPECT_EQ(Img.entry(FI), Pc);
    EXPECT_EQ(Img.func(FI).NumRegs, F.NumRegs);
    EXPECT_EQ(Img.func(FI).NumParams, F.NumParams);
    for (std::uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      EXPECT_EQ(Img.blockStart(FI, BI), Pc);
      for (std::uint32_t II = 0; II < F.Blocks[BI].Instructions.size();
           ++II, ++Pc) {
        const ir::Instruction &Src = F.Blocks[BI].Instructions[II];
        const exec::DecodedInst &D = Img.inst(Pc);
        EXPECT_EQ(static_cast<std::int32_t>(Pc), Src.Pc);
        EXPECT_EQ(D.Pc, Src.Pc);
        EXPECT_EQ(D.Op, Src.Op);
        EXPECT_EQ(D.isBlockStart(), II == 0);
        EXPECT_EQ(Img.funcOf(Pc), FI);
        EXPECT_EQ(Img.blockOf(Pc), BI);
        // Branch targets are pre-resolved to block-start flat PCs.
        if (Src.Op == ir::Opcode::Br) {
          EXPECT_EQ(static_cast<exec::FlatPc>(D.Imm),
                    Img.blockStart(FI, static_cast<std::uint32_t>(Src.Imm)));
        } else if (Src.Op == ir::Opcode::CondBr) {
          EXPECT_EQ(static_cast<exec::FlatPc>(D.Imm),
                    Img.blockStart(FI, static_cast<std::uint32_t>(Src.Imm)));
          EXPECT_EQ(static_cast<exec::FlatPc>(D.Imm2),
                    Img.blockStart(FI, static_cast<std::uint32_t>(Src.Imm2)));
        } else {
          EXPECT_EQ(D.Imm, Src.Imm);
        }
      }
    }
  }
}

TEST(CodeImage, TerminatorClassification) {
  ir::Module M = makeCallProgram();
  M.finalize();
  exec::CodeImage Img(M);
  std::uint32_t Returns = 0, CondJumps = 0, Jumps = 0;
  for (std::uint32_t B = 0; B < Img.numBlocks(); ++B) {
    switch (Img.blockDesc(B).Term) {
    case exec::TermClass::Return:
      ++Returns;
      break;
    case exec::TermClass::CondJump:
      ++CondJumps;
      break;
    case exec::TermClass::Jump:
      ++Jumps;
      break;
    }
  }
  EXPECT_GE(Returns, 3u); // two in mix, one in main
  EXPECT_GE(CondJumps, 2u); // the iff and the loop header
  EXPECT_GE(Jumps, 1u); // the loop latch
}

TEST(CodeImage, DigestSharingAndCache) {
  exec::CodeImage::clearCache();
  ir::Module A = makeCallProgram();
  ir::Module B = makeCallProgram();
  A.finalize();
  B.finalize();
  EXPECT_EQ(exec::moduleDigest(A), exec::moduleDigest(B));

  auto S1 = exec::CodeImage::getShared(A);
  auto S2 = exec::CodeImage::getShared(B);
  EXPECT_EQ(S1.get(), S2.get()); // content-identical modules share an image
  EXPECT_EQ(S1->digest(), exec::moduleDigest(A));

  exec::ImageCacheStats St = exec::CodeImage::cacheStats();
  EXPECT_GE(St.Hits, 1u);
  EXPECT_GE(St.Misses, 1u);

  // A different program digests differently and gets its own image.
  ir::Module C = makeMain(ret(c(7)));
  C.finalize();
  EXPECT_NE(exec::moduleDigest(C), exec::moduleDigest(A));
  EXPECT_NE(exec::CodeImage::getShared(C).get(), S1.get());
}

TEST(CodeImageCache, LruEvictsLeastRecentlyUsed) {
  exec::CodeImage::clearCache();
  exec::CodeImage::setCacheCapacity(2);

  // Three content-distinct programs.
  ir::Module A = makeMain(ret(c(11)));
  ir::Module B = makeMain(ret(c(22)));
  ir::Module C = makeMain(ret(c(33)));
  A.finalize();
  B.finalize();
  C.finalize();

  auto SA = exec::CodeImage::getShared(A);
  auto SB = exec::CodeImage::getShared(B);
  // Touch A so B becomes the least recently used entry...
  EXPECT_EQ(exec::CodeImage::getShared(A).get(), SA.get());
  // ...and inserting C evicts B, not A.
  auto SC = exec::CodeImage::getShared(C);

  exec::ImageCacheStats St = exec::CodeImage::cacheStats();
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_EQ(St.Entries, 2u);
  EXPECT_EQ(St.Capacity, 2u);

  // A is still resident; B rebuilds (a fresh image — the old shared_ptr
  // keeps the evicted one alive independently).
  EXPECT_EQ(exec::CodeImage::getShared(A).get(), SA.get());
  auto SB2 = exec::CodeImage::getShared(B);
  EXPECT_NE(SB2.get(), SB.get());
  EXPECT_EQ(SB2->digest(), SB->digest());

  exec::CodeImage::clearCache();
}

TEST(CodeImageCache, ShrinkingCapacityEvictsImmediately) {
  exec::CodeImage::clearCache();
  exec::CodeImage::setCacheCapacity(8);

  std::vector<ir::Module> Mods;
  for (int I = 0; I < 4; ++I) {
    Mods.push_back(makeMain(ret(c(100 + I))));
    Mods.back().finalize();
    exec::CodeImage::getShared(Mods.back());
  }
  EXPECT_EQ(exec::CodeImage::cacheStats().Entries, 4u);

  std::size_t Prev = exec::CodeImage::setCacheCapacity(1);
  EXPECT_EQ(Prev, 8u);
  exec::ImageCacheStats St = exec::CodeImage::cacheStats();
  EXPECT_EQ(St.Entries, 1u);
  EXPECT_EQ(St.Evictions, 3u);

  exec::CodeImage::clearCache();
}

TEST(CodeImageCache, MetricsExportReflectsStats) {
  exec::CodeImage::clearCache();
  ir::Module A = makeMain(ret(c(5)));
  A.finalize();
  exec::CodeImage::getShared(A); // miss
  exec::CodeImage::getShared(A); // hit

  metrics::Registry R;
  exec::exportImageCacheMetrics(R);
  EXPECT_GE(R.gauge("exec.image_cache.hits").value(), 1u);
  EXPECT_GE(R.gauge("exec.image_cache.misses").value(), 1u);
  EXPECT_EQ(R.gauge("exec.image_cache.entries").value(), 1u);
  EXPECT_EQ(R.gauge("exec.image_cache.capacity").value(),
            exec::CodeImage::DefaultCacheCapacity);

  exec::CodeImage::clearCache();
}

TEST(ExecContext, StepGranularitiesAgreeOnRandomPrograms) {
  for (std::uint64_t Seed = 1; Seed <= 6; ++Seed) {
    testutil::ProgramGenerator Gen(Seed);
    ir::Module M = Gen.generate();
    sim::HydraConfig Cfg;
    interp::RunResult Machine = runModule(M, Cfg); // run() fast path

    // One instruction at a time.
    interp::Heap H1;
    interp::DirectMemoryPort Port1(H1, Cfg);
    interp::ExecContext C1(M, Cfg);
    C1.start(M.EntryFunction, {});
    std::uint64_t Clock1 = 0;
    while (!C1.finished())
      Clock1 += C1.step(Port1, nullptr, Clock1);

    // One block at a time.
    interp::Heap H2;
    interp::DirectMemoryPort Port2(H2, Cfg);
    interp::ExecContext C2(M, Cfg);
    C2.start(M.EntryFunction, {});
    std::uint64_t Clock2 = 0;
    while (!C2.finished()) {
      ASSERT_TRUE(C2.atBlockStart());
      Clock2 += C2.stepBlock(Port2, nullptr, Clock2);
    }

    // Whole run under a cycle budget: resuming after a budget return must
    // not change any totals.
    interp::Heap H3;
    interp::DirectMemoryPort Port3(H3, Cfg);
    interp::ExecContext C3(M, Cfg);
    C3.start(M.EntryFunction, {});
    std::uint64_t Clock3 = C3.run(Port3, nullptr, 0, Machine.Cycles / 2);
    if (!C3.finished()) {
      EXPECT_TRUE(C3.atBlockStart()) << "seed " << Seed;
      EXPECT_GT(Clock3, Machine.Cycles / 2) << "seed " << Seed;
      Clock3 += C3.run(Port3, nullptr, Clock3, ~0ull);
    }
    EXPECT_TRUE(C3.finished()) << "seed " << Seed;

    EXPECT_EQ(Clock1, Machine.Cycles) << "seed " << Seed;
    EXPECT_EQ(Clock2, Machine.Cycles) << "seed " << Seed;
    EXPECT_EQ(Clock3, Machine.Cycles) << "seed " << Seed;
    EXPECT_EQ(C1.instructionsExecuted(), Machine.Instructions)
        << "seed " << Seed;
    EXPECT_EQ(C2.instructionsExecuted(), Machine.Instructions)
        << "seed " << Seed;
    EXPECT_EQ(C3.instructionsExecuted(), Machine.Instructions)
        << "seed " << Seed;
    EXPECT_EQ(C1.returnValue(), Machine.ReturnValue) << "seed " << Seed;
    EXPECT_EQ(C2.returnValue(), Machine.ReturnValue) << "seed " << Seed;
    EXPECT_EQ(C3.returnValue(), Machine.ReturnValue) << "seed " << Seed;
  }
}

TEST(ExecContext, RewindTopReissuesInstruction) {
  ir::Module M = makeMain(seq({
      assign("x", c(4)),
      assign("y", add(v("x"), c(2))),
      ret(v("y")),
  }));
  sim::HydraConfig Cfg;
  interp::Heap H;
  interp::DirectMemoryPort Port(H, Cfg);
  interp::ExecContext Ctx(M, Cfg);
  Ctx.start(M.EntryFunction, {});

  Ctx.step(Port, nullptr, 0); // consti: pc now mid-block
  ASSERT_FALSE(Ctx.atBlockStart());
  exec::FlatPc Before = Ctx.pc();
  Ctx.step(Port, nullptr, 0); // the add
  Ctx.rewindTop();            // undo the PC advance, as the TLS sync path does
  EXPECT_EQ(Ctx.pc(), Before);
  Ctx.step(Port, nullptr, 0); // re-issue the add
  EXPECT_EQ(Ctx.pc(), Before + 1);

  std::uint64_t Clock = 0;
  while (!Ctx.finished())
    Clock += Ctx.step(Port, nullptr, Clock);
  // The re-issued instruction is idempotent: the program still returns 6.
  EXPECT_EQ(Ctx.returnValue(), 6u);
}

TEST(ExecContext, StartAtAcceptsOversizedRegisterFile) {
  ir::Module M = makeMain(seq({
      assign("x", c(11)),
      assign("y", mul(v("x"), c(3))),
      ret(v("y")),
  }));
  M.finalize();
  sim::HydraConfig Cfg;
  std::uint64_t Expected = runModule(M, Cfg).ReturnValue;

  interp::Heap H;
  interp::DirectMemoryPort Port(H, Cfg);
  interp::ExecContext Ctx(M, Cfg);
  // Spawn-style entry: the register file is deliberately larger than the
  // function needs (the TLS engine recycles buffers across clones whose
  // register counts differ).
  std::vector<std::uint64_t> Regs(M.Functions[M.EntryFunction].NumRegs + 16,
                                  0);
  Ctx.startAt(M.EntryFunction, 0, std::move(Regs));
  EXPECT_TRUE(Ctx.atBlockStart());
  std::uint64_t Clock = 0;
  while (!Ctx.finished())
    Clock += Ctx.stepBlock(Port, nullptr, Clock);
  EXPECT_EQ(Ctx.returnValue(), Expected);
}

TEST(ExecContext, RepositionTopAdoptsLoopExitState) {
  // Mirrors the TLS shutdown path: one context runs the loop to its exit
  // and a second context, parked at the loop header, adopts the exit block
  // and register file via repositionTop and must finish identically.
  ir::Module M = makeMain(seq({
      assign("x", c(1)),
      forLoop("i", c(0), lt(v("i"), c(37)), 1,
              assign("x", band(add(mul(v("x"), c(33)), v("i")), c(0xFFFF)))),
      ret(v("x")),
  }));
  analysis::ModuleAnalysis MA(M);
  ASSERT_FALSE(MA.candidates().empty());
  jit::TlsLoopPlan Plan = jit::buildTlsPlan(MA, MA.candidates()[0]);

  sim::HydraConfig Cfg;
  interp::Heap H1;
  interp::DirectMemoryPort P1(H1, Cfg);
  interp::ExecContext A(M, Cfg);
  A.start(M.EntryFunction, {});
  std::uint64_t C1 = 0;
  bool SeenLoop = false;
  std::uint32_t ExitBlock = ~0u;
  std::vector<std::uint64_t> ExitRegs;
  while (!A.finished()) {
    if (A.callDepth() == 1 && A.atBlockStart()) {
      std::uint32_t B = A.currentBlock();
      if (B == Plan.Header || Plan.containsBlock(B))
        SeenLoop = true;
      else if (SeenLoop && ExitBlock == ~0u) {
        ExitBlock = B;
        ExitRegs = A.topRegs();
      }
    }
    C1 += A.stepBlock(P1, nullptr, C1);
  }
  ASSERT_NE(ExitBlock, ~0u) << "loop exit never reached";

  interp::Heap H2;
  interp::DirectMemoryPort P2(H2, Cfg);
  interp::ExecContext B(M, Cfg);
  B.start(M.EntryFunction, {});
  std::uint64_t C2 = 0;
  while (!(B.atBlockStart() && B.currentBlock() == Plan.Header))
    C2 += B.stepBlock(P2, nullptr, C2);
  B.repositionTop(ExitBlock, ExitRegs);
  EXPECT_TRUE(B.atBlockStart());
  EXPECT_EQ(B.currentBlock(), ExitBlock);
  while (!B.finished())
    C2 += B.stepBlock(P2, nullptr, C2);
  EXPECT_EQ(B.returnValue(), A.returnValue());
}

TEST(Trap, DivideByZeroThrowsInAllBuildModes) {
  ir::Module M = makeMain(seq({
      assign("z", c(0)),
      ret(sdiv(c(7), v("z"))),
  }));
  sim::HydraConfig Cfg;
  interp::Machine Machine(M, Cfg);
  try {
    Machine.run();
    FAIL() << "expected TrapError";
  } catch (const interp::TrapError &E) {
    EXPECT_EQ(E.kind(), interp::TrapKind::DivideByZero);
    EXPECT_GE(E.pc(), 0);
    EXPECT_NE(std::string(E.what()).find("division by zero"),
              std::string::npos);
  }
}

TEST(Trap, RemainderByZeroThrows) {
  ir::Module M = makeMain(seq({
      assign("z", c(0)),
      ret(srem(c(9), v("z"))),
  }));
  sim::HydraConfig Cfg;
  interp::Machine Machine(M, Cfg);
  EXPECT_THROW(Machine.run(), interp::TrapError);
}

TEST(Trap, NonZeroDivisorDoesNotTrap) {
  EXPECT_EQ(testutil::evalMain(seq({
                assign("z", c(3)),
                ret(sdiv(c(9), v("z"))),
            })),
            3u);
  EXPECT_EQ(testutil::evalMain(seq({
                assign("z", c(4)),
                ret(srem(c(9), v("z"))),
            })),
            1u);
}
