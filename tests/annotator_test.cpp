//===- tests/annotator_test.cpp - Annotation pass tests --------------------==//

#include "TestUtil.h"
#include "analysis/Candidates.h"
#include "ir/Verifier.h"
#include "jit/Annotator.h"
#include "tracer/TraceEngine.h"

#include <gtest/gtest.h>

using namespace jrpm;
using namespace jrpm::front;
using jrpm::testutil::makeMain;
using jrpm::testutil::runModule;

namespace {

std::uint64_t countOpcodes(const ir::Module &M, ir::Opcode Op) {
  std::uint64_t N = 0;
  for (const auto &F : M.Functions)
    for (const auto &BB : F.Blocks)
      for (const auto &I : BB.Instructions)
        N += I.Op == Op;
  return N;
}

ir::Module carriedLocalLoop() {
  return makeMain(seq({
      assign("a", allocWords(c(64))),
      assign("x", c(1)),
      forLoop("i", c(0), lt(v("i"), c(50)), 1,
              seq({
                  store(v("a"), v("i"), v("x")),
                  assign("x", add(mul(v("x"), c(3)), ld(v("a"), c(0)))),
                  store(v("a"), v("i"), add(v("x"), v("x"))),
              })),
      ret(v("x")),
  }));
}

} // namespace

TEST(Annotator, InsertsLoopMarkers) {
  ir::Module M = carriedLocalLoop();
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Base);
  EXPECT_EQ(countOpcodes(AM.Module, ir::Opcode::SLoop), 1u);
  EXPECT_EQ(countOpcodes(AM.Module, ir::Opcode::Eoi), 1u);
  EXPECT_GE(countOpcodes(AM.Module, ir::Opcode::ELoop), 1u);
  EXPECT_GE(countOpcodes(AM.Module, ir::Opcode::ReadStats), 1u);
  EXPECT_GT(countOpcodes(AM.Module, ir::Opcode::LwlAnno), 0u);
  EXPECT_GT(countOpcodes(AM.Module, ir::Opcode::SwlAnno), 0u);
}

TEST(Annotator, AnnotatedModuleStillComputesSameResult) {
  ir::Module M = carriedLocalLoop();
  auto Plain = runModule(M);
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Optimized);
  auto Annotated = runModule(AM.Module);
  EXPECT_EQ(Plain.ReturnValue, Annotated.ReturnValue);
  // Annotated code is slower but not wildly so.
  EXPECT_GT(Annotated.Cycles, Plain.Cycles);
}

TEST(Annotator, OptimizedHasFewerLocalAnnotations) {
  ir::Module M = carriedLocalLoop();
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule Base =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Base);
  jit::AnnotatedModule Opt =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Optimized);
  EXPECT_LT(Opt.LocalAnnotations, Base.LocalAnnotations);
}

TEST(Annotator, OptimizedHoistsStatReads) {
  // A two-deep nest: the optimized level reads statistics only at the
  // outermost candidate loop's exits.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(128))),
      forLoop("i", c(0), lt(v("i"), c(10)), 1,
              forLoop("j", c(0), lt(v("j"), c(10)), 1,
                      store(v("a"), add(mul(v("i"), c(10)), v("j")),
                            v("j")))),
      ret(ld(v("a"), c(3))),
  }));
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule Base =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Base);
  jit::AnnotatedModule Opt =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Optimized);
  EXPECT_EQ(Base.StatReads, 2u);
  EXPECT_EQ(Opt.StatReads, 1u);
}

TEST(Annotator, RejectedLoopsNotInstrumented) {
  // Pointer chase: rejected, so no sloop at all.
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              store(v("a"), v("i"), srem(add(v("i"), c(7)), c(64)))),
      assign("p", c(0)),
      assign("n", c(0)),
      whileLoop(lt(v("n"), c(30)),
                seq({
                    assign("p", ld(v("a"), v("p"))),
                    assign("n", add(v("n"), c(1))),
                })),
      ret(v("p")),
  }));
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Base);
  // Only the (accepted) init loop is instrumented.
  EXPECT_EQ(countOpcodes(AM.Module, ir::Opcode::SLoop), 1u);
}

TEST(Annotator, EventStreamIsBalanced) {
  // Running the annotated module against the tracer must leave the bank
  // stack empty and count matching entries/threads.
  ir::Module M = carriedLocalLoop();
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Optimized);
  sim::HydraConfig Cfg;
  tracer::TraceEngine Tracer(Cfg, AM.LoopInfos);
  interp::Machine Machine(AM.Module, Cfg);
  Machine.setTraceSink(&Tracer);
  Machine.run();
  const tracer::StlStats &S = Tracer.stats(0);
  EXPECT_EQ(S.Entries, 1u);
  // 50 iterations take 50 backedges (eoi fires on each); the final header
  // evaluation that fails the condition counts as a degenerate 51st
  // thread, exactly as compiled annotation code behaves.
  EXPECT_EQ(S.Threads, 51u);
  EXPECT_GT(S.Cycles, 0u);
  // The carried local x produces an arc on every full-iteration transition.
  EXPECT_GE(S.CritArcsPrev, 49u);
}

TEST(Annotator, BreakLoopStillBalanced) {
  ir::Module M = makeMain(seq({
      assign("a", allocWords(c(64))),
      assign("found", c(-1)),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              store(v("a"), v("i"), srem(mul(v("i"), c(37)), c(64)))),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              iff(eq(ld(v("a"), v("i")), c(17)),
                  seq({assign("found", v("i")), brk()}))),
      ret(v("found")),
  }));
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Base);
  sim::HydraConfig Cfg;
  tracer::TraceEngine Tracer(Cfg, AM.LoopInfos);
  interp::Machine Machine(AM.Module, Cfg);
  Machine.setTraceSink(&Tracer);
  auto R = Machine.run();
  auto RPlain = runModule(M);
  EXPECT_EQ(R.ReturnValue, RPlain.ReturnValue);
  // Both loops entered exactly once each (search loop exits via break).
  EXPECT_EQ(Tracer.stats(0).Entries + Tracer.stats(1).Entries, 2u);
}

TEST(Annotator, CarriedLocalAsCallArgumentStaysVerifiable) {
  // Regression (found by the fuzzer): annotating a carried local that is
  // passed as a call argument inserts lwl between Arg and Call; the
  // verifier must accept observer instructions inside the sequence and
  // execution must be unaffected.
  ProgramDef P;
  FuncDef Mix;
  Mix.Name = "mix";
  Mix.Params = {"a", "b"};
  Mix.Body = seq({ret(band(add(mul(v("a"), c(31)), v("b")), c(0xFFFF)))});
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("x", c(1)),
      forLoop("i", c(0), lt(v("i"), c(20)), 1,
              assign("x", call("mix", {v("x"), v("i")}))),
      ret(v("x")),
  });
  P.Functions.push_back(std::move(Mix));
  P.Functions.push_back(std::move(Main));
  ir::Module M = front::lowerProgram(P);

  auto Plain = runModule(M);
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Base);
  EXPECT_TRUE(ir::verifyModule(AM.Module).empty());
  auto Annotated = runModule(AM.Module);
  EXPECT_EQ(Annotated.ReturnValue, Plain.ReturnValue);
}
