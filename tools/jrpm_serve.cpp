//===- tools/jrpm_serve.cpp - Persistent analysis daemon & client ----------==//
//
// Usage:
//   jrpm-serve serve --socket <path> --store <dir> [--threads N]
//                    [--max-active N]
//       Run the analysis daemon in the foreground: accept requests on the
//       Unix-domain socket, serve results from the content-addressed
//       artifact store under <dir>, compute misses on a shared
//       work-stealing pool. SIGTERM/SIGINT drain gracefully: in-flight
//       work completes and persists, then the daemon exits 0.
//   jrpm-serve submit --socket <path> (--json <request> | [flags])
//                    [-o <file>] [--quiet]
//       Send one request and print the payload to stdout (or -o, written
//       atomically). Without --json the request is assembled from
//       --kind sweep|analyze|replay (default sweep), --workloads a,b,
//       --levels base,optimized, --config <point> (repeatable),
//       --workload <name>, --level <name>, --mode pipeline|conformance,
//       --seed N, --timeout-ms N. The response's digest and cache
//       disposition (hit/miss/join) are reported on stderr.
//   jrpm-serve status --socket <path>
//       Ping the daemon; prints its worker-thread count.
//   jrpm-serve stats --socket <path> [-o <file>]
//       Fetch the daemon's metrics document (jrpm-metrics-v1; readable by
//       `jrpm-metrics show`).
//
// Exit codes: 0 success, 1 request/transport failure, 2 bad invocation
// (usage on stderr).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"
#include "support/AtomicFile.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <signal.h>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: jrpm-serve serve --socket <path> --store <dir> [--threads N]\n"
      "                        [--max-active N]\n"
      "       jrpm-serve submit --socket <path> (--json <request> |\n"
      "                        [--kind sweep|analyze|replay]\n"
      "                        [--workloads a,b,...] [--levels a,b]\n"
      "                        [--config <point>]... [--workload <name>]\n"
      "                        [--level <name>] [--mode <mode>] [--seed N]\n"
      "                        [--timeout-ms N]) [-o <file>] [--quiet]\n"
      "       jrpm-serve status --socket <path>\n"
      "       jrpm-serve stats --socket <path> [-o <file>]\n");
  return 2;
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

serve::Server *SignalTarget = nullptr;

void onStopSignal(int) {
  // requestStop is async-signal-safe by contract (atomic store + pipe
  // write); everything else happens on the main thread after waitForStop.
  if (SignalTarget)
    SignalTarget->requestStop();
}

int cmdServe(const std::vector<std::string> &Args) {
  serve::ServerConfig Cfg;
  for (std::size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Next = [&]() -> const std::string * {
      return I + 1 < Args.size() ? &Args[++I] : nullptr;
    };
    const std::string *V;
    if (A == "--socket" && (V = Next()))
      Cfg.SocketPath = *V;
    else if (A == "--store" && (V = Next()))
      Cfg.StoreDir = *V;
    else if (A == "--threads" && (V = Next()))
      Cfg.Threads = static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 10));
    else if (A == "--max-active" && (V = Next()))
      Cfg.MaxActive =
          static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 10));
    else
      return usage();
  }
  if (Cfg.SocketPath.empty() || Cfg.StoreDir.empty() || Cfg.MaxActive == 0)
    return usage();

  serve::Server S(Cfg);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "jrpm-serve: %s\n", Err.c_str());
    return 1;
  }

  SignalTarget = &S;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  std::printf("jrpm-serve: listening on %s (store %s)\n",
              Cfg.SocketPath.c_str(), Cfg.StoreDir.c_str());
  std::fflush(stdout);

  S.waitForStop();
  S.drain();
  SignalTarget = nullptr;
  std::printf("jrpm-serve: drained\n");
  return 0;
}

/// Assembles a request document from submit's convenience flags.
bool buildRequest(const std::string &Kind,
                  const std::vector<std::string> &Workloads,
                  const std::vector<std::string> &Levels,
                  const std::vector<std::string> &Configs,
                  const std::string &Workload, const std::string &Level,
                  const std::string &Mode, const std::string &Seed,
                  const std::string &TimeoutMs, Json &Out) {
  Out = Json::object();
  Out["kind"] = Kind;
  if (Kind == "sweep") {
    if (!Workload.empty() || !Level.empty())
      return false; // those are analyze/replay spellings
    Json W = Json::array(), L = Json::array(), C = Json::array();
    for (const std::string &S : Workloads)
      W.push(S);
    for (const std::string &S : Levels)
      L.push(S);
    for (const std::string &S : Configs)
      C.push(S);
    Out["workloads"] = W;
    Out["levels"] = L;
    Out["configs"] = C;
    if (!Mode.empty())
      Out["mode"] = Mode;
    if (!Seed.empty())
      Out["seed"] = static_cast<std::uint64_t>(
          std::strtoull(Seed.c_str(), nullptr, 10));
    if (!TimeoutMs.empty())
      Out["timeout_ms"] = static_cast<std::uint64_t>(
          std::strtoull(TimeoutMs.c_str(), nullptr, 10));
    return true;
  }
  if (Kind == "analyze" || Kind == "replay") {
    if (Workload.empty() || !Workloads.empty() || !Levels.empty() ||
        !Mode.empty() || !Seed.empty() || Configs.size() > 1)
      return false;
    Out["workload"] = Workload;
    if (!Level.empty())
      Out["level"] = Level;
    if (!Configs.empty())
      Out["config"] = Configs.front();
    if (Kind == "analyze" && !TimeoutMs.empty())
      Out["timeout_ms"] = static_cast<std::uint64_t>(
          std::strtoull(TimeoutMs.c_str(), nullptr, 10));
    return true;
  }
  return false;
}

/// Writes \p Payload to \p OutPath (atomically) or stdout.
bool emitPayload(const std::string &Payload, const std::string &OutPath) {
  if (OutPath.empty()) {
    std::fwrite(Payload.data(), 1, Payload.size(), stdout);
    return true;
  }
  std::string Err;
  if (!writeFileAtomic(OutPath, Payload, &Err)) {
    std::fprintf(stderr, "jrpm-serve: %s\n", Err.c_str());
    return false;
  }
  return true;
}

int cmdSubmit(const std::vector<std::string> &Args) {
  std::string Socket, RawJson, Kind = "sweep", Workload, Level, Mode, Seed;
  std::string TimeoutMs, OutPath;
  std::vector<std::string> Workloads, Levels, Configs;
  bool Quiet = false;
  for (std::size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Next = [&]() -> const std::string * {
      return I + 1 < Args.size() ? &Args[++I] : nullptr;
    };
    const std::string *V;
    if (A == "--socket" && (V = Next()))
      Socket = *V;
    else if (A == "--json" && (V = Next()))
      RawJson = *V;
    else if (A == "--kind" && (V = Next()))
      Kind = *V;
    else if (A == "--workloads" && (V = Next()))
      Workloads = splitCommas(*V);
    else if (A == "--levels" && (V = Next()))
      Levels = splitCommas(*V);
    else if (A == "--config" && (V = Next()))
      Configs.push_back(*V);
    else if (A == "--workload" && (V = Next()))
      Workload = *V;
    else if (A == "--level" && (V = Next()))
      Level = *V;
    else if (A == "--mode" && (V = Next()))
      Mode = *V;
    else if (A == "--seed" && (V = Next()))
      Seed = *V;
    else if (A == "--timeout-ms" && (V = Next()))
      TimeoutMs = *V;
    else if (A == "-o" && (V = Next()))
      OutPath = *V;
    else if (A == "--quiet")
      Quiet = true;
    else
      return usage();
  }
  if (Socket.empty())
    return usage();

  Json Request;
  if (!RawJson.empty()) {
    std::string Err;
    if (!Json::parse(RawJson, Request, &Err)) {
      std::fprintf(stderr, "jrpm-serve: --json: %s\n", Err.c_str());
      return 2;
    }
  } else if (!buildRequest(Kind, Workloads, Levels, Configs, Workload, Level,
                           Mode, Seed, TimeoutMs, Request)) {
    return usage();
  }

  serve::Client C;
  serve::Response R;
  std::string Err;
  if (!C.connect(Socket, &Err) || !C.request(Request, R, &Err)) {
    std::fprintf(stderr, "jrpm-serve: %s\n", Err.c_str());
    return 1;
  }
  if (!R.Ok) {
    std::fprintf(stderr, "jrpm-serve: %s: %s\n", R.Code.c_str(),
                 R.Message.c_str());
    return 1;
  }
  if (!Quiet)
    std::fprintf(stderr, "jrpm-serve: digest %s cache %s bytes %zu\n",
                 R.Digest.c_str(), R.Cache.c_str(), R.Payload.size());
  return emitPayload(R.Payload, OutPath) ? 0 : 1;
}

int cmdStatus(const std::string &Socket) {
  serve::Client C;
  serve::Response R;
  std::string Err;
  Json Ping = Json::object();
  Ping["kind"] = "ping";
  if (!C.connect(Socket, &Err) || !C.request(Ping, R, &Err)) {
    std::fprintf(stderr, "jrpm-serve: %s\n", Err.c_str());
    return 1;
  }
  if (!R.Ok) {
    std::fprintf(stderr, "jrpm-serve: %s: %s\n", R.Code.c_str(),
                 R.Message.c_str());
    return 1;
  }
  Json D;
  std::string ParseErr;
  std::uint64_t Threads = 0;
  if (Json::parse(R.Payload, D, &ParseErr))
    if (const Json *T = D.find("threads"))
      Threads = T->asUint();
  std::printf("jrpm-serve: up (%llu worker threads)\n",
              (unsigned long long)Threads);
  return 0;
}

int cmdStats(const std::string &Socket, const std::string &OutPath) {
  serve::Client C;
  serve::Response R;
  std::string Err;
  Json Stats = Json::object();
  Stats["kind"] = "stats";
  if (!C.connect(Socket, &Err) || !C.request(Stats, R, &Err)) {
    std::fprintf(stderr, "jrpm-serve: %s\n", Err.c_str());
    return 1;
  }
  if (!R.Ok) {
    std::fprintf(stderr, "jrpm-serve: %s: %s\n", R.Code.c_str(),
                 R.Message.c_str());
    return 1;
  }
  return emitPayload(R.Payload, OutPath) ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  // A client vanishing mid-response must surface as EPIPE, not kill us.
  std::signal(SIGPIPE, SIG_IGN);

  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);

  if (Cmd == "serve")
    return cmdServe(Args);
  if (Cmd == "submit")
    return cmdSubmit(Args);
  if (Cmd == "status" || Cmd == "stats") {
    std::string Socket, OutPath;
    for (std::size_t I = 0; I < Args.size(); ++I) {
      const std::string &A = Args[I];
      if (A == "--socket" && I + 1 < Args.size())
        Socket = Args[++I];
      else if (Cmd == "stats" && A == "-o" && I + 1 < Args.size())
        OutPath = Args[++I];
      else
        return usage();
    }
    if (Socket.empty())
      return usage();
    return Cmd == "status" ? cmdStatus(Socket) : cmdStats(Socket, OutPath);
  }
  return usage();
}
