//===- tools/jrpm_sweep.cpp - Parallel sweep & conformance driver ----------==//
//
// Usage:
//   jrpm-sweep run [options]
//       Expand the plan and execute every (workload x level x config) job
//       on the work-stealing pool; print a summary table and optionally
//       write the structured JSON report.
//   jrpm-sweep plan [options]
//       Print the expanded job list without running anything.
//   jrpm-sweep conformance [options]
//       Differential conformance across the whole registry: sequential
//       interp vs annotated trace (captured + replayed) vs speculative
//       TLS, both annotation levels, a >= 3-point engine-config grid.
//       Exits nonzero on any checksum or selection-digest mismatch.
//
// Options:
//   --workloads a,b,c   workload subset (default: full Table 6 registry)
//   --levels l1,l2      base, optimized, or both (default: optimized;
//                       conformance always runs both)
//   --config k=v[,k=v]  add one configuration point (repeatable); knobs:
//                       assoc banks disable-after history line-grain
//                       load-lines pc-binning prefilter slots store-lines
//                       sync
//   --threads n         pool width (default: hardware concurrency)
//   --timeout-ms n      soft per-job wall-clock budget
//   --seed n            seed stamped into the report
//   -o file.json        write the JSON report (atomic rename)
//   --metrics file.json write the merged per-job instrumentation registry
//                       (deterministic: byte-identical for any --threads)
//   --timeline file.json write a Chrome trace_event timeline of worker
//                       occupancy (wall-clock; NOT deterministic)
//   --no-timings        deterministic JSON only: no wall-clock, no pool
//                       width (1-thread and N-thread runs byte-identical)
//   --quiet             suppress the per-job table, print the summary only
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"
#include "support/Format.h"
#include "support/Table.h"
#include "sweep/Conformance.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: jrpm-sweep run|plan|conformance [options]\n"
      "  --workloads a,b,c  --levels base,optimized  --config k=v[,k=v]\n"
      "  --threads n  --timeout-ms n  --seed n  -o file.json\n"
      "  --metrics file.json  --timeline file.json  --no-timings  --quiet\n"
      "knobs:");
  for (const std::string &K : sweep::knownKnobs())
    std::fprintf(stderr, " %s", K.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  std::size_t Pos = 0;
  while (Pos <= S.size()) {
    std::size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

struct CliOptions {
  sweep::SweepPlan Plan;
  unsigned Threads = 0;
  std::string OutPath;
  std::string MetricsPath;
  std::string TimelinePath;
  bool IncludeTimings = true;
  bool Quiet = false;
  bool Ok = true;
};

CliOptions parseCli(int Argc, char **Argv, int First) {
  CliOptions O;
  for (int I = First; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextArg = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "missing value for %s\n", A.c_str());
        O.Ok = false;
        return "";
      }
      return Argv[++I];
    };
    if (A == "--workloads") {
      O.Plan.Workloads = splitCommas(NextArg());
    } else if (A == "--levels") {
      for (const std::string &L : splitCommas(NextArg())) {
        if (L == "base")
          O.Plan.Levels.push_back(jit::AnnotationLevel::Base);
        else if (L == "optimized" || L == "opt")
          O.Plan.Levels.push_back(jit::AnnotationLevel::Optimized);
        else {
          std::fprintf(stderr, "unknown level '%s'\n", L.c_str());
          O.Ok = false;
        }
      }
    } else if (A == "--config") {
      sweep::ConfigPoint P;
      std::string Err;
      if (!sweep::parseConfigPoint(NextArg(), P, &Err)) {
        std::fprintf(stderr, "%s\n", Err.c_str());
        O.Ok = false;
      } else {
        O.Plan.Configs.push_back(std::move(P));
      }
    } else if (A == "--threads") {
      O.Threads = static_cast<unsigned>(std::atoi(NextArg()));
    } else if (A == "--timeout-ms") {
      O.Plan.TimeoutMs = static_cast<std::uint32_t>(std::atoi(NextArg()));
    } else if (A == "--seed") {
      O.Plan.Seed = static_cast<std::uint64_t>(std::atoll(NextArg()));
    } else if (A == "-o") {
      O.OutPath = NextArg();
    } else if (A == "--metrics") {
      O.MetricsPath = NextArg();
    } else if (A == "--timeline") {
      O.TimelinePath = NextArg();
    } else if (A == "--no-timings") {
      O.IncludeTimings = false;
    } else if (A == "--quiet") {
      O.Quiet = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      O.Ok = false;
    }
  }
  return O;
}

void printJobsTable(const sweep::SweepReport &Report) {
  TextTable T;
  T.setHeader({"#", "workload", "level", "config", "status", "cycles",
               "sel", "pred", "actual", "digest"});
  for (const sweep::SweepResult &R : Report.Results)
    T.addRow({formatString("%u", R.Index), R.Workload,
              sweep::annotationLevelName(R.Level), R.ConfigName,
              sweep::jobStatusName(R.Status),
              withCommas(static_cast<std::int64_t>(R.PlainCycles)),
              formatString("%llu/%llu",
                           (unsigned long long)R.SelectedLoops,
                           (unsigned long long)R.Loops),
              formatString("%.2f", R.PredictedSpeedup),
              formatString("%.2f", R.ActualSpeedup),
              formatString("%016llx",
                           (unsigned long long)R.SelectionDigest)});
  T.print();
}

bool writeJsonFile(const Json &J, const std::string &Path,
                   const char *What) {
  std::string Err;
  if (writeFileAtomic(Path, J.dump(), &Err)) {
    std::printf("%s written to %s\n", What, Path.c_str());
    return true;
  }
  std::fprintf(stderr, "jrpm-sweep: %s\n", Err.c_str());
  return false;
}

int finishReport(const sweep::SweepReport &Report, const CliOptions &O) {
  if (!O.Quiet)
    printJobsTable(Report);
  std::printf("%llu jobs: %llu ok, %llu failed, %llu timed out "
              "(%u threads, %.1f ms)\n",
              (unsigned long long)Report.Results.size(),
              (unsigned long long)Report.OkCount,
              (unsigned long long)Report.FailedCount,
              (unsigned long long)Report.TimedOutCount, Report.Threads,
              Report.WallMs);
  for (const sweep::SweepResult &R : Report.Results)
    if (R.Status != sweep::JobStatus::Ok)
      std::fprintf(stderr, "  %s [%s, %s]: %s\n", R.Workload.c_str(),
                   sweep::annotationLevelName(R.Level), R.ConfigName.c_str(),
                   R.Error.c_str());
  if (!O.OutPath.empty()) {
    std::string Err;
    if (!sweep::writeReport(Report, O.OutPath, O.IncludeTimings, &Err)) {
      std::fprintf(stderr, "jrpm-sweep: %s\n", Err.c_str());
      return 1;
    }
    std::printf("report written to %s\n", O.OutPath.c_str());
  }
  if (!O.MetricsPath.empty() &&
      !writeJsonFile(sweep::mergedMetrics(Report).toJson(), O.MetricsPath,
                     "metrics"))
    return 1;
  return Report.allOk() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd != "run" && Cmd != "plan" && Cmd != "conformance")
    return usage();

  CliOptions O = parseCli(Argc, Argv, 2);
  if (!O.Ok)
    return usage();

  if (Cmd == "conformance") {
    std::vector<sweep::ConfigPoint> Grid = O.Plan.Configs.empty()
                                               ? sweep::defaultConformanceGrid()
                                               : O.Plan.Configs;
    sweep::SweepPlan Plan =
        sweep::conformancePlan(std::move(Grid), O.Plan.Workloads);
    Plan.TimeoutMs = O.Plan.TimeoutMs;
    Plan.Seed = O.Plan.Seed;
    O.Plan = std::move(Plan);
  }

  std::vector<sweep::SweepJob> Jobs;
  std::string Err;
  if (!O.Plan.expand(Jobs, &Err)) {
    std::fprintf(stderr, "jrpm-sweep: %s\n", Err.c_str());
    return 2;
  }
  for (const sweep::SweepJob &J : Jobs)
    if (!workloads::findWorkload(J.Workload))
      std::fprintf(stderr, "warning: unknown workload '%s' (job %u will "
                           "report as failed)\n",
                   J.Workload.c_str(), J.Index);

  if (Cmd == "plan") {
    TextTable T;
    T.setHeader({"#", "workload", "level", "config", "mode"});
    for (const sweep::SweepJob &J : Jobs)
      T.addRow({formatString("%u", J.Index), J.Workload,
                sweep::annotationLevelName(J.Level), J.ConfigName,
                J.Mode == sweep::JobMode::Conformance ? "conformance"
                                                      : "pipeline"});
    T.print();
    std::printf("%zu jobs\n", Jobs.size());
    return 0;
  }

  metrics::Timeline Timeline;
  sweep::SweepReport Report = sweep::runSweep(
      Jobs, O.Threads, O.TimelinePath.empty() ? nullptr : &Timeline);
  Report.Seed = O.Plan.Seed;
  if (Cmd == "conformance" && Report.allOk())
    std::printf("conformance: %llu jobs bit-identical across sequential, "
                "annotated-trace, and speculative execution\n",
                (unsigned long long)Report.OkCount);
  if (!O.TimelinePath.empty() &&
      !writeJsonFile(Timeline.toJson(), O.TimelinePath, "timeline"))
    return 1;
  return finishReport(Report, O);
}
