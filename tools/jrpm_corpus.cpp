//===- tools/jrpm_corpus.cpp - Template corpus driver ----------------------==//
//
// Usage:
//   jrpm-corpus extract [--workloads a,b,c] [-o file.json]
//       Extract the loop/dependence templates of the registry (or a
//       subset) and print/write the deterministic template manifest.
//   jrpm-corpus generate --template <id> [--seed n] [--count k] [-o f.jrpm]
//       Instantiate seeded variants of one template. With --count 1 (the
//       default) prints or writes the variant's `.jrpm` repro document;
//       with --count > 1 prints a seed/digest/weight table.
//   jrpm-corpus run [options]
//       Sweep the differential oracle stack over every (template x seed)
//       variant on the work-stealing pool. The report JSON is byte-
//       identical for any --threads and across reruns. Exits 1 when any
//       variant fails (failures are auto-shrunk into the report).
//   jrpm-corpus shrink --repro file.jrpm [--inject-trip n] [-o min.jrpm]
//       Re-run the oracles on a repro document and minimize the failure
//       hole-wise. Exits 1 when the variant passes (nothing to shrink).
//   jrpm-corpus stats
//       Per-family template statistics over the registry.
//
// Options (run):
//   --workloads a,b,c        extract from a workload subset
//   --variants-per-template n  seeds per template (default 25)
//   --seed n                 base seed (default 1)
//   --threads n              pool width (default 1; 0 = hardware)
//   --quick                  cap the corpus at <= 200 variants (tier-1)
//   --inject-trip n          plant a fault: variants whose trip-count
//                            holes multiply to >= n are reported failing
//   --no-shrink              skip auto-shrinking failures
//   -o file.json             write the report (atomic rename)
//   --metrics file.json      write the corpus.* instrumentation registry
//   --quiet                  summary line only, no per-family table
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusRunner.h"
#include "support/AtomicFile.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: jrpm-corpus extract|generate|run|shrink|stats [options]\n"
      "  extract  [--workloads a,b,c] [-o file.json]\n"
      "  generate --template <id> [--seed n] [--count k] [-o file.jrpm]\n"
      "  run      [--workloads a,b,c] [--variants-per-template n]\n"
      "           [--seed n] [--threads n] [--quick] [--inject-trip n]\n"
      "           [--no-shrink] [-o file.json] [--metrics file.json]\n"
      "           [--quiet]\n"
      "  shrink   --repro file.jrpm [--inject-trip n] [-o min.jrpm]\n"
      "  stats\n");
  return 2;
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  std::size_t Pos = 0;
  while (Pos <= S.size()) {
    std::size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

struct CliOptions {
  std::vector<std::string> Workloads;
  std::string TemplateId;
  std::string ReproPath;
  std::string OutPath;
  std::string MetricsPath;
  std::uint64_t Seed = 1;
  std::uint32_t Count = 1;
  std::uint32_t VariantsPerTemplate = 25;
  std::uint32_t Threads = 1;
  std::int64_t InjectTrip = 0;
  bool Quick = false;
  bool NoShrink = false;
  bool Quiet = false;
  bool Ok = true;
};

CliOptions parseCli(int Argc, char **Argv, int First) {
  CliOptions O;
  for (int I = First; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextArg = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "missing value for %s\n", A.c_str());
        O.Ok = false;
        return "";
      }
      return Argv[++I];
    };
    if (A == "--workloads") {
      O.Workloads = splitCommas(NextArg());
    } else if (A == "--template") {
      O.TemplateId = NextArg();
    } else if (A == "--repro") {
      O.ReproPath = NextArg();
    } else if (A == "--seed") {
      O.Seed = static_cast<std::uint64_t>(std::atoll(NextArg()));
    } else if (A == "--count") {
      O.Count = static_cast<std::uint32_t>(std::atoi(NextArg()));
    } else if (A == "--variants-per-template") {
      O.VariantsPerTemplate =
          static_cast<std::uint32_t>(std::atoi(NextArg()));
    } else if (A == "--threads") {
      O.Threads = static_cast<std::uint32_t>(std::atoi(NextArg()));
    } else if (A == "--inject-trip") {
      O.InjectTrip = std::atoll(NextArg());
    } else if (A == "--quick") {
      O.Quick = true;
    } else if (A == "--no-shrink") {
      O.NoShrink = true;
    } else if (A == "--quiet") {
      O.Quiet = true;
    } else if (A == "-o") {
      O.OutPath = NextArg();
    } else if (A == "--metrics") {
      O.MetricsPath = NextArg();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      O.Ok = false;
    }
  }
  return O;
}

/// Extracts templates from the selected workloads (all when the subset is
/// empty). Returns false on an unknown workload name.
bool extractSelected(const CliOptions &O, std::vector<corpus::Template> &Out) {
  if (O.Workloads.empty()) {
    Out = corpus::extractRegistryTemplates();
    return true;
  }
  for (const std::string &Name : O.Workloads) {
    const workloads::Workload *W = nullptr;
    for (const workloads::Workload &Candidate : workloads::allWorkloads())
      if (Candidate.Name == Name)
        W = &Candidate;
    if (!W) {
      std::fprintf(stderr, "unknown workload: %s\n", Name.c_str());
      return false;
    }
    std::vector<corpus::Template> Ts =
        corpus::extractTemplates(W->Name, W->Build());
    for (corpus::Template &T : Ts)
      Out.push_back(std::move(T));
  }
  return true;
}

bool writeOrPrint(const std::string &Content, const std::string &Path,
                  const char *What) {
  if (Path.empty()) {
    std::fputs(Content.c_str(), stdout);
    return true;
  }
  std::string Err;
  if (writeFileAtomic(Path, Content, &Err)) {
    std::printf("%s written to %s\n", What, Path.c_str());
    return true;
  }
  std::fprintf(stderr, "jrpm-corpus: %s\n", Err.c_str());
  return false;
}

int cmdExtract(const CliOptions &O) {
  std::vector<corpus::Template> Templates;
  if (!extractSelected(O, Templates))
    return 1;
  return writeOrPrint(corpus::templatesToJson(Templates).dump(), O.OutPath,
                      "template manifest")
             ? 0
             : 1;
}

int cmdGenerate(const CliOptions &O) {
  if (O.TemplateId.empty() || O.Count == 0)
    return usage();
  std::vector<corpus::Template> Templates =
      corpus::extractRegistryTemplates();
  const corpus::Template *T = corpus::findTemplate(Templates, O.TemplateId);
  if (!T) {
    std::fprintf(stderr, "unknown template: %s\n", O.TemplateId.c_str());
    return 1;
  }
  if (O.Count == 1) {
    corpus::Variant V = corpus::instantiate(*T, O.Seed);
    return writeOrPrint(corpus::reproDocument(V), O.OutPath,
                        "repro document")
               ? 0
               : 1;
  }
  TextTable Table;
  Table.setHeader({"seed", "digest", "weight", "holes"});
  for (std::uint32_t I = 0; I < O.Count; ++I) {
    corpus::Variant V = corpus::instantiate(*T, O.Seed + I);
    std::string Holes;
    for (const corpus::HoleValue &H : V.Spec.Holes) {
      if (!Holes.empty())
        Holes += " ";
      Holes += H.Name + "=" + std::to_string(H.Value);
    }
    Table.addRow({formatString("%llu", (unsigned long long)(O.Seed + I)),
                  formatString("%016llx", (unsigned long long)V.Digest),
                  formatString("%lld", (long long)V.Spec.weight(*T)),
                  Holes});
  }
  Table.print();
  return 0;
}

int cmdRun(const CliOptions &O) {
  std::vector<corpus::Template> Templates;
  if (!extractSelected(O, Templates))
    return 1;
  if (Templates.empty()) {
    std::fprintf(stderr, "no templates extracted\n");
    return 1;
  }

  corpus::CorpusOptions Opts;
  Opts.BaseSeed = O.Seed;
  Opts.VariantsPerTemplate = O.VariantsPerTemplate;
  Opts.Threads = O.Threads;
  Opts.Oracle.InjectTripAtLeast = O.InjectTrip;
  Opts.ShrinkFailures = !O.NoShrink;
  if (O.Quick) {
    std::uint32_t Cap = static_cast<std::uint32_t>(
        200 / Templates.size() ? 200 / Templates.size() : 1);
    if (Opts.VariantsPerTemplate > Cap)
      Opts.VariantsPerTemplate = Cap;
  }
  metrics::Registry Metrics;
  if (!O.MetricsPath.empty())
    Opts.Metrics = &Metrics;

  corpus::CorpusReport Report = corpus::runCorpus(Templates, Opts);

  if (!O.Quiet) {
    // Family-level table, aggregated in plan order.
    struct FamilyAgg {
      std::uint64_t Variants = 0, Failed = 0, Candidates = 0,
                    DynSelected = 0, StaticRejects = 0, FalseRejects = 0;
    };
    std::map<std::string, FamilyAgg> Families;
    for (const corpus::TemplateSummary &T : Report.Templates) {
      FamilyAgg &F = Families[T.Family];
      F.Variants += T.Variants;
      F.Failed += T.Failed;
      F.Candidates += T.Candidates;
      F.DynSelected += T.DynSelected;
      F.StaticRejects += T.StaticRejects;
      F.FalseRejects += T.FalseRejects;
    }
    TextTable Table;
    Table.setHeader({"family", "variants", "failed", "loops", "selected",
                     "static-rej", "false-rej"});
    for (const auto &[Name, F] : Families)
      Table.addRow({Name, formatString("%llu", (unsigned long long)F.Variants),
                    formatString("%llu", (unsigned long long)F.Failed),
                    formatString("%llu", (unsigned long long)F.Candidates),
                    formatString("%llu", (unsigned long long)F.DynSelected),
                    formatString("%llu",
                                 (unsigned long long)F.StaticRejects),
                    formatString("%llu",
                                 (unsigned long long)F.FalseRejects)});
    Table.print();
  }
  std::printf("%llu variants over %zu templates: %llu passed, %llu failed, "
              "%llu false rejects, digest %016llx\n",
              (unsigned long long)Report.TotalVariants, Templates.size(),
              (unsigned long long)Report.Passed,
              (unsigned long long)Report.Failed,
              (unsigned long long)Report.FalseRejects,
              (unsigned long long)Report.CorpusDigest);
  for (const corpus::FailureRecord &F : Report.Failures)
    std::fprintf(stderr, "  FAIL %s seed %llu: %s\n",
                 F.Spec.TemplateId.c_str(), (unsigned long long)F.Spec.Seed,
                 F.Failures.empty() ? "?" : F.Failures.front().Detail.c_str());

  if (!O.OutPath.empty()) {
    std::string Err;
    if (!writeFileAtomic(O.OutPath, Report.toJson().dump(), &Err)) {
      std::fprintf(stderr, "jrpm-corpus: %s\n", Err.c_str());
      return 1;
    }
    std::printf("report written to %s\n", O.OutPath.c_str());
  }
  if (!O.MetricsPath.empty()) {
    std::string Err;
    if (!writeFileAtomic(O.MetricsPath, Metrics.toJson().dump(), &Err)) {
      std::fprintf(stderr, "jrpm-corpus: %s\n", Err.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", O.MetricsPath.c_str());
  }
  return Report.Failed == 0 ? 0 : 1;
}

int cmdShrink(const CliOptions &O) {
  if (O.ReproPath.empty())
    return usage();
  std::string Text, Err;
  if (!readFileToString(O.ReproPath, Text, &Err)) {
    std::fprintf(stderr, "jrpm-corpus: %s\n", Err.c_str());
    return 1;
  }
  corpus::VariantSpec Spec;
  std::uint64_t RecordedDigest = 0;
  if (!corpus::parseReproDocument(Text, Spec, &RecordedDigest, &Err)) {
    std::fprintf(stderr, "jrpm-corpus: %s: %s\n", O.ReproPath.c_str(),
                 Err.c_str());
    return 1;
  }
  std::vector<corpus::Template> Templates =
      corpus::extractRegistryTemplates();
  const corpus::Template *T =
      corpus::findTemplate(Templates, Spec.TemplateId);
  if (!T) {
    std::fprintf(stderr, "unknown template: %s\n", Spec.TemplateId.c_str());
    return 1;
  }
  corpus::Variant V = corpus::instantiate(*T, Spec);
  if (RecordedDigest && V.Digest != RecordedDigest)
    std::fprintf(stderr,
                 "warning: rebuilt digest %016llx != recorded %016llx "
                 "(template drift?)\n",
                 (unsigned long long)V.Digest,
                 (unsigned long long)RecordedDigest);

  corpus::OracleConfig Cfg;
  Cfg.InjectTripAtLeast = O.InjectTrip;
  corpus::ShrinkResult R = corpus::shrinkVariant(*T, Spec, Cfg);
  if (!R.StillFailing) {
    std::printf("variant passes all oracles; nothing to shrink\n");
    return 1;
  }
  corpus::Variant Min = corpus::instantiate(*T, R.Minimized);
  std::printf("shrunk %s seed %llu: weight %lld -> %lld in %u steps "
              "(%u evaluations)\n",
              Spec.TemplateId.c_str(), (unsigned long long)Spec.Seed,
              (long long)Spec.weight(*T), (long long)R.Minimized.weight(*T),
              R.Steps, R.Evaluations);
  for (const corpus::OracleFailure &F : R.Outcome.Failures)
    std::printf("  %s: %s\n", corpus::oracleKindName(F.Kind),
                F.Detail.c_str());
  return writeOrPrint(corpus::reproDocument(Min), O.OutPath,
                      "minimized repro")
             ? 0
             : 1;
}

int cmdStats() {
  std::vector<corpus::Template> Templates =
      corpus::extractRegistryTemplates();
  struct FamilyAgg {
    std::uint64_t Templates = 0, SourceLoops = 0, Holes = 0;
  };
  std::map<std::string, FamilyAgg> Families;
  for (const corpus::Template &T : Templates) {
    FamilyAgg &F = Families[T.Family];
    ++F.Templates;
    F.SourceLoops += T.SourceLoops;
    F.Holes += T.Holes.size();
  }
  TextTable Table;
  Table.setHeader({"family", "templates", "source-loops", "holes"});
  for (const auto &[Name, F] : Families)
    Table.addRow({Name, formatString("%llu", (unsigned long long)F.Templates),
                  formatString("%llu", (unsigned long long)F.SourceLoops),
                  formatString("%llu", (unsigned long long)F.Holes)});
  Table.print();
  std::printf("%zu templates over %zu workloads\n", Templates.size(),
              workloads::allWorkloads().size());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  CliOptions O = parseCli(Argc, Argv, 2);
  if (!O.Ok)
    return usage();
  if (Cmd == "extract")
    return cmdExtract(O);
  if (Cmd == "generate")
    return cmdGenerate(O);
  if (Cmd == "run")
    return cmdRun(O);
  if (Cmd == "shrink")
    return cmdShrink(O);
  if (Cmd == "stats") {
    if (Argc > 2)
      return usage();
    return cmdStats();
  }
  return usage();
}
