//===- tools/jrpm_run.cpp - Command-line driver for the Jrpm pipeline ------==//
//
// Usage:
//   jrpm-run list
//       List the Table 6 workloads.
//   jrpm-run run <workload> [options]
//       Run the full pipeline (sequential baseline, TEST profiling, STL
//       selection, speculative execution) and print a summary.
//   jrpm-run report <workload> [options]
//       Like `run`, plus the per-loop TEST statistics, Equation 1
//       estimates, PC-binned dependency sites, and TLS engine counters.
//   jrpm-run dump-ir <workload>
//       Print the lowered IR of the workload.
//   jrpm-run trace <workload> [--events <n>]
//       Record the annotated run to a temporary .jtrace and pretty-print
//       the first n events (default 40). Thin wrapper over the trace
//       subsystem — `jrpm-trace` is the full record/replay tool.
//
// Options:
//   --base             use base (unoptimized) annotations
//   --sync             synchronize globalized loop locals (Section 3.2)
//   --line-grain       per-line violation detection instead of per-word
//   --banks <n>        number of comparator banks (default 8)
//   --history <n>      heap store-timestamp FIFO lines (default 192)
//   --disable-after <n> stop tracing a loop after n threads (default off)
//   --trace-batch <n>  tracer event-block capacity, n >= 1 (results are
//                      bit-identical for every capacity)
//
//===----------------------------------------------------------------------===//

#include "jrpm/Pipeline.h"
#include "metrics/Metrics.h"
#include "metrics/Timeline.h"
#include "support/AtomicFile.h"
#include "support/Format.h"
#include "support/Table.h"
#include "trace/Dump.h"
#include "workloads/Workload.h"

#include "analysis/Candidates.h"
#include "jit/Annotator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jrpm-run list\n"
               "       jrpm-run run <workload> [options]\n"
               "       jrpm-run report <workload> [options]\n"
               "       jrpm-run dump-ir <workload>\n"
               "       jrpm-run trace <workload> [--events <n>]\n"
               "options: --base --sync --line-grain --banks <n> "
               "--history <n> --disable-after <n>\n"
               "         --trace-batch <n> --metrics <file.json> "
               "--timeline <file.json>\n");
  return 2;
}

int listWorkloads() {
  TextTable T;
  T.setHeader({"Name", "Category", "Description", "Data set"});
  for (const auto &W : workloads::allWorkloads())
    T.addRow({W.Name, W.Category, W.Description, W.DataSet});
  T.print();
  return 0;
}

struct Options {
  pipeline::PipelineConfig Cfg;
  std::string MetricsPath;
  std::string TimelinePath;
  bool Ok = true;
};

Options parseOptions(int Argc, char **Argv, int First) {
  Options O;
  O.Cfg.ExtendedPcBinning = true;
  for (int I = First; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextInt = [&](std::uint32_t &Out) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "missing value for %s\n", A.c_str());
        O.Ok = false;
        return;
      }
      Out = static_cast<std::uint32_t>(std::atoi(Argv[++I]));
    };
    auto NextStr = [&](std::string &Out) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "missing value for %s\n", A.c_str());
        O.Ok = false;
        return;
      }
      Out = Argv[++I];
    };
    if (A == "--base")
      O.Cfg.Level = jit::AnnotationLevel::Base;
    else if (A == "--sync")
      O.Cfg.Hw.SyncCarriedLocals = true;
    else if (A == "--line-grain")
      O.Cfg.Hw.ViolationGrain = sim::ViolationGranularity::Line;
    else if (A == "--banks")
      NextInt(O.Cfg.Hw.ComparatorBanks);
    else if (A == "--history")
      NextInt(O.Cfg.Hw.HeapTimestampFifoLines);
    else if (A == "--disable-after") {
      std::uint32_t N = 0;
      NextInt(N);
      O.Cfg.DisableLoopAfterThreads = N;
    } else if (A == "--trace-batch" || A.rfind("--trace-batch=", 0) == 0) {
      std::uint32_t N = 0;
      if (A == "--trace-batch")
        NextInt(N);
      else
        N = static_cast<std::uint32_t>(
            std::atoi(A.c_str() + std::strlen("--trace-batch=")));
      if (O.Ok && N == 0) {
        std::fprintf(stderr, "--trace-batch requires a positive event "
                             "count\n");
        O.Ok = false;
      }
      O.Cfg.TraceBatchEvents = N;
    } else if (A == "--metrics")
      NextStr(O.MetricsPath);
    else if (A.rfind("--metrics=", 0) == 0)
      O.MetricsPath = A.substr(std::strlen("--metrics="));
    else if (A == "--timeline")
      NextStr(O.TimelinePath);
    else if (A.rfind("--timeline=", 0) == 0)
      O.TimelinePath = A.substr(std::strlen("--timeline="));
    else {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      O.Ok = false;
    }
  }
  return O;
}

/// Serializes \p J to \p Path; returns false (after reporting) on failure.
bool writeJsonFile(const Json &J, const std::string &Path) {
  std::string Err;
  if (writeFileAtomic(Path, J.dump(), &Err))
    return true;
  std::fprintf(stderr, "jrpm-run: %s\n", Err.c_str());
  return false;
}

void printSummary(const pipeline::PipelineResult &R) {
  std::printf("sequential   : %s cycles (checksum %llu)\n",
              withCommas(static_cast<std::int64_t>(R.PlainRun.Cycles))
                  .c_str(),
              (unsigned long long)R.PlainRun.ReturnValue);
  std::printf("profiling    : %s cycles (%.1f%% slowdown, peak banks %u, "
              "peak local slots %u)\n",
              withCommas(static_cast<std::int64_t>(R.ProfiledRun.Cycles))
                  .c_str(),
              (R.profilingSlowdown() - 1.0) * 100.0, R.PeakBanksInUse,
              R.PeakLocalSlots);
  std::printf("selection    : %zu of %zu loops, predicted speedup %.2fx\n",
              R.Selection.SelectedLoops.size(), R.Selection.Loops.size(),
              R.Selection.PredictedSpeedup);
  std::printf("speculative  : %s cycles (checksum %llu) -> %.2fx actual\n",
              withCommas(static_cast<std::int64_t>(R.TlsRun.Cycles)).c_str(),
              (unsigned long long)R.TlsRun.ReturnValue, R.actualSpeedup());
  std::printf("verification : %s\n",
              R.TlsRun.ReturnValue == R.PlainRun.ReturnValue
                  ? "speculative result identical to sequential"
                  : "MISMATCH — engine bug");
}

void printLoopReport(const pipeline::Jrpm &J,
                     const pipeline::PipelineResult &R) {
  TextTable T;
  T.setHeader({"loop", "state", "cov%", "threads", "thr size", "arcs(t-1)",
               "arc len", "ovf%", "Eq.1", "violations", "restarts"});
  for (const auto &Rep : R.Selection.Loops) {
    const analysis::CandidateStl &C = J.moduleAnalysis().candidate(
        Rep.LoopId);
    std::string State = C.Rejected ? "rejected"
                        : Rep.Stats.Threads == 0
                            ? "untraced"
                            : (Rep.Selected ? "SELECTED" : "candidate");
    std::uint64_t Violations = 0, Restarts = 0;
    auto It = R.TlsLoopStats.find(Rep.LoopId);
    if (It != R.TlsLoopStats.end()) {
      Violations = It->second.Violations;
      Restarts = It->second.Restarts;
    }
    T.addRow({formatString("#%u", Rep.LoopId), State,
              formatString("%.1f", Rep.Coverage * 100),
              formatString("%llu",
                           (unsigned long long)Rep.Stats.Threads),
              formatString("%.0f", Rep.Stats.avgThreadSize()),
              formatString("%llu",
                           (unsigned long long)Rep.Stats.CritArcsPrev),
              formatString("%.0f", Rep.Stats.avgArcPrev()),
              formatString("%.1f", Rep.Stats.overflowFreq() * 100),
              formatString("%.2f", Rep.Estimate.Speedup),
              formatString("%llu", (unsigned long long)Violations),
              formatString("%llu", (unsigned long long)Restarts)});
  }
  T.print();

  // PC-binned dependency sites of selected loops (extended mode).
  for (const auto &Rep : R.Selection.Loops) {
    if (!Rep.Selected || Rep.Stats.PcBins.empty())
      continue;
    std::printf("\nloop #%u dependency sites (extended TEST):\n",
                Rep.LoopId);
    for (const auto &[Pc, Bin] : Rep.Stats.PcBins)
      std::printf("  load pc=%-6d critical arcs=%-8llu avg length=%.0f\n",
                  Pc, (unsigned long long)Bin.CriticalArcs,
                  Bin.averageLength());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "list") {
    if (Argc != 2)
      return usage();
    return listWorkloads();
  }
  if (Cmd != "run" && Cmd != "report" && Cmd != "dump-ir" && Cmd != "trace")
    return usage();
  if (Argc < 3)
    return usage();

  const workloads::Workload *W = workloads::findWorkload(Argv[2]);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (try: jrpm-run list)\n",
                 Argv[2]);
    return 2;
  }

  if (Cmd == "dump-ir") {
    if (Argc != 3)
      return usage();
    std::string Text = W->Build().dump();
    std::fputs(Text.c_str(), stdout);
    return 0;
  }

  if (Cmd == "trace") {
    std::uint64_t Events = 40;
    for (int I = 3; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A == "--events") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "missing value for --events\n");
          return usage();
        }
        Events = static_cast<std::uint64_t>(std::atoll(Argv[++I]));
      } else if (A.rfind("--events=", 0) == 0) {
        Events = static_cast<std::uint64_t>(
            std::atoll(A.c_str() + std::strlen("--events=")));
      } else {
        std::fprintf(stderr, "unknown option: %s\n", A.c_str());
        return usage();
      }
    }
    // Thin wrapper over the trace subsystem: record the annotated run to a
    // temporary .jtrace, then pretty-print it with the one shared event
    // formatter (trace::dumpTrace).
    std::string TmpPath = "/tmp/jrpm-run-trace-" +
                          std::to_string(static_cast<long>(getpid())) +
                          ".jtrace";
    pipeline::PipelineConfig Cfg;
    Cfg.WorkloadName = W->Name;
    Cfg.RecordTracePath = TmpPath;
    int Ret = 0;
    try {
      pipeline::Jrpm J(W->Build(), Cfg);
      J.profileAndSelect();
      trace::Reader R(TmpPath);
      trace::dumpTrace(R, stdout, Events);
    } catch (const trace::Error &E) {
      std::fprintf(stderr, "jrpm-run trace: %s\n", E.what());
      Ret = 1;
    }
    std::remove(TmpPath.c_str());
    return Ret;
  }

  Options O = parseOptions(Argc, Argv, 3);
  if (!O.Ok)
    return usage();

  metrics::Registry Reg;
  metrics::Timeline Timeline;
  if (!O.MetricsPath.empty())
    O.Cfg.Metrics = &Reg;
  if (!O.TimelinePath.empty())
    O.Cfg.Timeline = &Timeline;

  pipeline::Jrpm J(W->Build(), O.Cfg);
  pipeline::PipelineResult R = J.runAll();
  std::printf("== %s (%s) ==\n", W->Name.c_str(), W->Category.c_str());
  printSummary(R);
  if (Cmd == "report") {
    std::printf("\n");
    printLoopReport(J, R);
  }
  if (!O.MetricsPath.empty() && !writeJsonFile(Reg.toJson(), O.MetricsPath))
    return 1;
  if (!O.TimelinePath.empty() &&
      !writeJsonFile(Timeline.toJson(), O.TimelinePath))
    return 1;
  return R.TlsRun.ReturnValue == R.PlainRun.ReturnValue ? 0 : 1;
}
