//===- tools/jrpm_trace.cpp - Record/inspect/replay .jtrace files ----------==//
//
// Usage:
//   jrpm-trace record <workload> [-o <path>] [capture options]
//       Run the annotated profiling interpretation once, streaming the
//       event stream to disk, and print the capture summary.
//   jrpm-trace info <path>
//       Print the trace header and footer (O(1) — no event decoding).
//   jrpm-trace dump <path> [--events <n>]
//       Pretty-print the first n events (default 40).
//   jrpm-trace replay <path> [analysis options]
//       Re-drive the TEST analysis from the trace (no interpretation) and
//       print the resulting STL selection. Defaults to the capture-time
//       configuration; any option overrides it, so one recorded trace
//       feeds arbitrarily many analysis configurations.
//   jrpm-trace diff <a> <b>
//       Event-by-event comparison for golden-trace regression. Exit 1 and
//       print the first divergence when the traces differ.
//
// Capture options: --base --sync --line-grain --banks <n> --history <n>
//                  --disable-after <n>
// Analysis options: --sync --line-grain --banks <n> --history <n>
//                   --disable-after <n>
//
//===----------------------------------------------------------------------===//

#include "jrpm/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"
#include "trace/Dump.h"
#include "trace/Replay.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: jrpm-trace record <workload> [-o <path>] [options]\n"
      "       jrpm-trace info <path>\n"
      "       jrpm-trace dump <path> [--events <n>]\n"
      "       jrpm-trace replay <path> [options]\n"
      "       jrpm-trace diff <a> <b>\n"
      "options: --base --sync --line-grain --banks <n> --history <n> "
      "--disable-after <n>\n");
  return 2;
}

struct OptionOverrides {
  bool Ok = true;
  bool Base = false;
  bool Sync = false;
  bool LineGrain = false;
  std::uint32_t Banks = 0;
  std::uint32_t History = 0;
  std::uint64_t DisableAfter = 0;
  bool HasDisableAfter = false;
  std::string OutPath;
  std::uint64_t Events = 40;
};

OptionOverrides parseOptions(int Argc, char **Argv, int First) {
  OptionOverrides O;
  for (int I = First; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        O.Ok = false;
        return "0";
      }
      return Argv[++I];
    };
    if (A == "--base")
      O.Base = true;
    else if (A == "--sync")
      O.Sync = true;
    else if (A == "--line-grain")
      O.LineGrain = true;
    else if (A == "--banks")
      O.Banks = static_cast<std::uint32_t>(std::atoi(Next()));
    else if (A == "--history")
      O.History = static_cast<std::uint32_t>(std::atoi(Next()));
    else if (A == "--disable-after") {
      O.DisableAfter = static_cast<std::uint64_t>(std::atoll(Next()));
      O.HasDisableAfter = true;
    } else if (A == "-o")
      O.OutPath = Next();
    else if (A == "--events")
      O.Events = static_cast<std::uint64_t>(std::atoll(Next()));
    else {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      O.Ok = false;
    }
  }
  return O;
}

void applyTracerOverrides(const OptionOverrides &O, sim::HydraConfig &Hw) {
  if (O.Sync)
    Hw.SyncCarriedLocals = true;
  if (O.LineGrain)
    Hw.ViolationGrain = sim::ViolationGranularity::Line;
  if (O.Banks)
    Hw.ComparatorBanks = O.Banks;
  if (O.History)
    Hw.HeapTimestampFifoLines = O.History;
}

void printSelection(const tracer::SelectionResult &Selection) {
  TextTable T;
  T.setHeader({"loop", "state", "cov%", "threads", "thr size", "arcs(t-1)",
               "arc len", "ovf%", "Eq.1"});
  for (const auto &Rep : Selection.Loops) {
    std::string State = Rep.Stats.Threads == 0
                            ? "untraced"
                            : (Rep.Selected ? "SELECTED" : "candidate");
    T.addRow({formatString("#%u", Rep.LoopId), State,
              formatString("%.1f", Rep.Coverage * 100),
              formatString("%llu",
                           static_cast<unsigned long long>(
                               Rep.Stats.Threads)),
              formatString("%.0f", Rep.Stats.avgThreadSize()),
              formatString("%llu", static_cast<unsigned long long>(
                                       Rep.Stats.CritArcsPrev)),
              formatString("%.0f", Rep.Stats.avgArcPrev()),
              formatString("%.1f", Rep.Stats.overflowFreq() * 100),
              formatString("%.2f", Rep.Estimate.Speedup)});
  }
  T.print();
  std::printf("selected %zu of %zu loops, predicted speedup %.2fx\n",
              Selection.SelectedLoops.size(), Selection.Loops.size(),
              Selection.PredictedSpeedup);
}

int cmdRecord(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  const workloads::Workload *W = workloads::findWorkload(Argv[2]);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (try: jrpm-run list)\n",
                 Argv[2]);
    return 2;
  }
  OptionOverrides O = parseOptions(Argc, Argv, 3);
  if (!O.Ok)
    return usage();

  pipeline::PipelineConfig Cfg;
  Cfg.ExtendedPcBinning = true;
  Cfg.WorkloadName = W->Name;
  Cfg.RecordTracePath =
      O.OutPath.empty() ? W->Name + ".jtrace" : O.OutPath;
  if (O.Base)
    Cfg.Level = jit::AnnotationLevel::Base;
  if (O.HasDisableAfter)
    Cfg.DisableLoopAfterThreads = O.DisableAfter;
  applyTracerOverrides(O, Cfg.Hw);

  pipeline::Jrpm J(W->Build(), Cfg);
  auto P = J.profileAndSelect();

  trace::Reader R(Cfg.RecordTracePath);
  const trace::TraceFooter &F = R.footer();
  std::printf("recorded %s -> %s\n", W->Name.c_str(),
              Cfg.RecordTracePath.c_str());
  std::printf("  events       : %s\n",
              withCommas(static_cast<std::int64_t>(F.TotalEvents)).c_str());
  std::printf("  cycles       : %s\n",
              withCommas(static_cast<std::int64_t>(F.Run.Cycles)).c_str());
  std::printf("  selected     : %zu of %zu loops, predicted %.2fx\n",
              P.Selection.SelectedLoops.size(), P.Selection.Loops.size(),
              P.Selection.PredictedSpeedup);
  return 0;
}

int cmdInfo(const std::string &Path) {
  trace::Reader R(Path);
  const trace::TraceHeader &H = R.header();
  const trace::TraceFooter &F = R.footer();
  std::printf("trace        : %s\n", Path.c_str());
  std::printf("workload     : %s\n",
              H.WorkloadName.empty() ? "(unnamed)" : H.WorkloadName.c_str());
  std::printf("annotations  : %s\n",
              H.AnnotationLevel == 0 ? "base" : "optimized");
  std::printf("pc binning   : %s\n", H.ExtendedPcBinning ? "extended" : "off");
  std::printf("loops        : %zu\n", H.LoopLocals.size());
  std::printf("hw           : %u banks, %u history lines, %s grain%s\n",
              H.Hw.ComparatorBanks, H.Hw.HeapTimestampFifoLines,
              H.Hw.ViolationGrain == sim::ViolationGranularity::Word
                  ? "word"
                  : "line",
              H.Hw.SyncCarriedLocals ? ", synced locals" : "");
  std::printf("events       : %s\n",
              withCommas(static_cast<std::int64_t>(F.TotalEvents)).c_str());
  for (std::uint32_t K = 0; K < trace::NumEventKinds; ++K)
    if (F.EventCounts[K])
      std::printf("  %-5s      : %s\n",
                  trace::eventKindName(static_cast<trace::EventKind>(K)),
                  withCommas(static_cast<std::int64_t>(F.EventCounts[K]))
                      .c_str());
  std::printf("last cycle   : %s\n",
              withCommas(static_cast<std::int64_t>(F.LastCycle)).c_str());
  std::printf("run cycles   : %s (checksum %llu)\n",
              withCommas(static_cast<std::int64_t>(F.Run.Cycles)).c_str(),
              static_cast<unsigned long long>(F.Run.ReturnValue));
  return 0;
}

int cmdDump(int Argc, char **Argv) {
  OptionOverrides O = parseOptions(Argc, Argv, 3);
  if (!O.Ok)
    return usage();
  trace::Reader R(Argv[2]);
  trace::dumpTrace(R, stdout, O.Events);
  return 0;
}

int cmdReplay(int Argc, char **Argv) {
  OptionOverrides O = parseOptions(Argc, Argv, 3);
  if (!O.Ok)
    return usage();
  trace::Reader R(Argv[2]);
  trace::ReplayConfig Cfg = trace::recordedConfig(R);
  applyTracerOverrides(O, Cfg.Hw);
  if (O.HasDisableAfter)
    Cfg.DisableLoopAfterThreads = O.DisableAfter;

  trace::ReplayOutcome Out = trace::selectFromTrace(R, Cfg);
  std::printf("replayed %s events of %s (%s)\n",
              withCommas(static_cast<std::int64_t>(Out.EventsReplayed))
                  .c_str(),
              R.path().c_str(),
              R.header().WorkloadName.empty()
                  ? "unnamed workload"
                  : R.header().WorkloadName.c_str());
  std::printf("peak banks %u, peak local slots %u, peak nest %u\n\n",
              Out.PeakBanksInUse, Out.PeakLocalSlots, Out.PeakDynamicNest);
  printSelection(Out.Selection);
  return 0;
}

int cmdDiff(const std::string &A, const std::string &B) {
  trace::Reader RA(A);
  trace::Reader RB(B);
  trace::DiffResult D = trace::diffTraces(RA, RB);
  if (D.Identical) {
    std::printf("traces identical: %s events\n",
                withCommas(static_cast<std::int64_t>(D.FirstDivergence))
                    .c_str());
    return 0;
  }
  std::printf("traces differ: %s\n", D.Detail.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  try {
    if (Cmd == "record")
      return cmdRecord(Argc, Argv);
    if (Cmd == "info" && Argc == 3)
      return cmdInfo(Argv[2]);
    if (Cmd == "dump" && Argc >= 3)
      return cmdDump(Argc, Argv);
    if (Cmd == "replay" && Argc >= 3)
      return cmdReplay(Argc, Argv);
    if (Cmd == "diff" && Argc == 4)
      return cmdDiff(Argv[2], Argv[3]);
  } catch (const trace::Error &E) {
    std::fprintf(stderr, "jrpm-trace: %s\n", E.what());
    return 1;
  }
  return usage();
}
