//===- tools/jrpm_metrics.cpp - Inspect & diff metrics JSON exports --------==//
//
// Usage:
//   jrpm-metrics show <file.json>
//       Pretty-print a metrics export produced by `jrpm-run --metrics` or
//       `jrpm-sweep --metrics`: the counters, gauges, and histogram
//       summaries in tabular form.
//   jrpm-metrics diff <a.json> <b.json>
//       Structural comparison of two exports (works on any JSON document
//       the support/Json writer emits). Prints one line per differing
//       path. Exit 0 when identical, 1 when they differ, 2 on bad
//       invocation or unreadable/malformed input.
//
// Because registry exports are deterministic (sorted keys, fixed double
// format, simulated-cycle values only), `diff` doubles as a regression
// gate: two runs of the same workload under the same configuration must
// compare identical.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Json.h"
#include "support/Table.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(stderr, "usage: jrpm-metrics show <file.json>\n"
                       "       jrpm-metrics diff <a.json> <b.json>\n");
  return 2;
}

bool slurp(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "jrpm-metrics: cannot open %s\n", Path.c_str());
    return false;
  }
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof Buf, F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    std::fprintf(stderr, "jrpm-metrics: read error on %s\n", Path.c_str());
  return Ok;
}

bool load(const std::string &Path, Json &Out) {
  std::string Text, Err;
  if (!slurp(Path, Text))
    return false;
  if (!Json::parse(Text, Out, &Err)) {
    std::fprintf(stderr, "jrpm-metrics: %s: %s\n", Path.c_str(),
                 Err.c_str());
    return false;
  }
  return true;
}

/// Single-line rendering of a scalar for diff output.
std::string brief(const Json &J) {
  std::string S = J.dump();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  if (S.size() > 48)
    S = S.substr(0, 45) + "...";
  return S;
}

/// Recursive structural diff; appends one "path: explanation" line per
/// difference. Scalars compare via their deterministic rendering.
void diffJson(const Json &A, const Json &B, const std::string &Path,
              std::vector<std::string> &Out) {
  std::string Where = Path.empty() ? "(root)" : Path;
  if (A.kind() != B.kind()) {
    Out.push_back(Where + ": kind differs (" + brief(A) + " vs " + brief(B) +
                  ")");
    return;
  }
  if (A.isObject()) {
    auto It = A.members().begin(), Jt = B.members().begin();
    while (It != A.members().end() || Jt != B.members().end()) {
      std::string Prefix = Path.empty() ? "" : Path + ".";
      if (Jt == B.members().end() ||
          (It != A.members().end() && It->first < Jt->first)) {
        Out.push_back(Prefix + It->first + ": only in first (" +
                      brief(It->second) + ")");
        ++It;
      } else if (It == A.members().end() || Jt->first < It->first) {
        Out.push_back(Prefix + Jt->first + ": only in second (" +
                      brief(Jt->second) + ")");
        ++Jt;
      } else {
        diffJson(It->second, Jt->second, Prefix + It->first, Out);
        ++It;
        ++Jt;
      }
    }
    return;
  }
  if (A.isArray()) {
    if (A.items().size() != B.items().size()) {
      Out.push_back(Where +
                    formatString(": array length %zu vs %zu",
                                 A.items().size(), B.items().size()));
      return;
    }
    for (std::size_t I = 0; I < A.items().size(); ++I)
      diffJson(A.items()[I], B.items()[I],
               Where + formatString("[%zu]", I), Out);
    return;
  }
  if (A.dump() != B.dump())
    Out.push_back(Where + ": " + brief(A) + " != " + brief(B));
}

std::string fmtUint(const Json *J) {
  return formatString("%llu",
                      (unsigned long long)(J ? J->asUint() : 0));
}

int cmdShow(const std::string &Path) {
  Json Root;
  if (!load(Path, Root))
    return 2;
  const Json *Schema = Root.find("schema");
  std::printf("%s (%s)\n", Path.c_str(),
              Schema && Schema->isString() ? Schema->str().c_str()
                                           : "no schema");

  const Json *Counters = Root.find("counters");
  if (Counters && Counters->isObject() && !Counters->members().empty()) {
    TextTable T;
    T.setHeader({"counter", "value"});
    for (const auto &[Name, V] : Counters->members())
      T.addRow({Name, withCommas(static_cast<std::int64_t>(V.asUint()))});
    std::printf("\n");
    T.print();
  }

  const Json *Gauges = Root.find("gauges");
  if (Gauges && Gauges->isObject() && !Gauges->members().empty()) {
    TextTable T;
    T.setHeader({"gauge", "value"});
    for (const auto &[Name, V] : Gauges->members())
      T.addRow({Name, withCommas(static_cast<std::int64_t>(V.asUint()))});
    std::printf("\n");
    T.print();
  }

  const Json *Hists = Root.find("histograms");
  if (Hists && Hists->isObject() && !Hists->members().empty()) {
    TextTable T;
    T.setHeader({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto &[Name, H] : Hists->members()) {
      const Json *Mean = H.find("mean");
      T.addRow({Name, fmtUint(H.find("count")),
                formatString("%.1f", Mean ? Mean->number() : 0.0),
                fmtUint(H.find("p50")), fmtUint(H.find("p95")),
                fmtUint(H.find("p99")), fmtUint(H.find("max"))});
    }
    std::printf("\n");
    T.print();
  }
  return 0;
}

int cmdDiff(const std::string &PathA, const std::string &PathB) {
  Json A, B;
  if (!load(PathA, A) || !load(PathB, B))
    return 2;
  std::vector<std::string> Diffs;
  diffJson(A, B, "", Diffs);
  if (Diffs.empty()) {
    std::printf("metrics identical\n");
    return 0;
  }
  for (const std::string &D : Diffs)
    std::printf("%s\n", D.c_str());
  std::printf("%zu difference(s)\n", Diffs.size());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "show" && Argc == 3)
    return cmdShow(Argv[2]);
  if (Cmd == "diff" && Argc == 4)
    return cmdDiff(Argv[2], Argv[3]);
  return usage();
}
