//===- tools/jrpm_lint.cpp - Static checks over workload modules -----------==//
//
// Usage:
//   jrpm-lint all [options]
//       Lint every registry workload.
//   jrpm-lint <workload> [options]
//       Lint one workload: the structural/def-use/type module verifier on
//       the lowered IR, the annotation verifier at both annotation levels,
//       and the TLS plan verifier for every candidate loop.
//
// Options:
//   --prefilter   enable the static dependence pre-filter
//   --oracle      enable the affine speculation oracle (implies per-loop
//                 verdicts in the report)
//   --deps        print the per-loop memory dependence report
//   --json        emit one deterministic JSON document on stdout instead
//                 of the human report (diagnostics, loops, verdicts)
//   --jobs N      lint workloads on N threads (the report is identical
//                 for any N; the golden gate checks that)
//
// Exits nonzero if any verifier reports a violation.
//
//===----------------------------------------------------------------------===//

#include "jrpm/LintReport.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(stderr, "usage: jrpm-lint <workload>|all [--prefilter] "
                       "[--oracle] [--deps] [--json] [--jobs N]\n");
  return 2;
}

/// Renders the per-loop dependence table from the structured report.
void printDepReport(const Json &Doc) {
  const Json *Name = Doc.find("workload");
  const Json *Loops = Doc.find("loops");
  if (!Name || !Loops)
    return;
  std::printf("\n== %s: memory dependence report ==\n", Name->str().c_str());
  TextTable T;
  T.setHeader({"loop", "state", "loads", "stores", "RAW", "WAW", "may",
               "indep", "parallel", "serial window", "oracle"});
  for (const Json &L : Loops->items()) {
    auto Num = [&](const char *Key) -> std::uint64_t {
      const Json *V = L.find(Key);
      return V ? V->asUint() : 0;
    };
    const Json *Status = L.find("status");
    const Json *Reject = L.find("reject");
    bool Rejected = Status && Status->str() == "rejected";
    const Json *Serial = L.find("serial_window");
    const Json *Oracle = L.find("oracle");
    std::string Verdict = "-";
    if (Oracle)
      if (const Json *V = Oracle->find("verdict"))
        Verdict = V->str();
    const Json *Par = L.find("parallel");
    T.addRow({formatString("#%llu", (unsigned long long)Num("id")),
              Rejected && Reject ? Reject->str() : "candidate",
              formatString("%llu", (unsigned long long)Num("loads")),
              formatString("%llu", (unsigned long long)Num("stores")),
              formatString("%llu", (unsigned long long)Num("raw")),
              formatString("%llu", (unsigned long long)Num("waw")),
              formatString("%llu", (unsigned long long)Num("may")),
              formatString("%llu", (unsigned long long)Num("independent")),
              Par && Par->boolean() ? "yes" : "-",
              Serial ? formatString("%llu cyc",
                                    (unsigned long long)Serial->asUint())
                     : "-",
              Verdict});
  }
  T.print();
}

void printDiagnostics(const Json &Doc) {
  const Json *Name = Doc.find("workload");
  const Json *Diags = Doc.find("diagnostics");
  if (!Name || !Diags)
    return;
  for (const Json &D : Diags->items()) {
    const Json *Pass = D.find("pass");
    const Json *Msg = D.find("message");
    std::printf("%s: %s: %s\n", Name->str().c_str(),
                Pass ? Pass->str().c_str() : "?",
                Msg ? Msg->str().c_str() : "?");
  }
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Target = Argv[1];
  analysis::AnalysisOptions Opts;
  bool Deps = false;
  bool JsonMode = false;
  unsigned Jobs = 1;
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--prefilter") {
      Opts.StaticPrefilter = true;
    } else if (A == "--oracle") {
      Opts.AffineOracle = true;
    } else if (A == "--deps") {
      Deps = true;
    } else if (A == "--json") {
      JsonMode = true;
    } else if (A == "--jobs") {
      if (I + 1 >= Argc)
        return usage();
      std::string V = Argv[++I];
      if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos ||
          V == "0")
        return usage();
      Jobs = static_cast<unsigned>(std::stoul(V));
    } else {
      return usage();
    }
  }

  std::vector<const workloads::Workload *> Targets;
  if (Target == "all") {
    for (const workloads::Workload &W : workloads::allWorkloads())
      Targets.push_back(&W);
  } else {
    const workloads::Workload *W = workloads::findWorkload(Target);
    if (!W) {
      std::fprintf(stderr, "unknown workload '%s' (try: jrpm-run list)\n",
                   Target.c_str());
      return 2;
    }
    Targets.push_back(W);
  }

  // Lint in parallel, report in registry order: the output is a pure
  // function of the workload set and options, never of the schedule.
  std::vector<lint::WorkloadLint> Results(Targets.size());
  std::atomic<std::size_t> Next{0};
  auto Work = [&] {
    for (std::size_t I = Next.fetch_add(1); I < Targets.size();
         I = Next.fetch_add(1)) {
      ir::Module M = Targets[I]->Build();
      Results[I] = lint::lintWorkload(Targets[I]->Name, M, Opts);
    }
  };
  if (Jobs <= 1 || Targets.size() <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T < Jobs; ++T)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }

  std::uint32_t Errors = 0;
  for (const lint::WorkloadLint &R : Results)
    Errors += R.Violations;

  if (JsonMode) {
    if (Targets.size() == 1 && Target != "all") {
      std::fputs(Results.front().Doc.dump().c_str(), stdout);
    } else {
      Json Doc = Json::object();
      Json Arr = Json::array();
      for (lint::WorkloadLint &R : Results)
        Arr.push(std::move(R.Doc));
      Doc["workloads"] = std::move(Arr);
      Doc["violations"] = Errors;
      std::fputs(Doc.dump().c_str(), stdout);
    }
  } else {
    for (const lint::WorkloadLint &R : Results) {
      printDiagnostics(R.Doc);
      if (Deps)
        printDepReport(R.Doc);
    }
    std::printf("%u workload(s) linted, %u violation(s)\n",
                static_cast<std::uint32_t>(Targets.size()), Errors);
  }
  return Errors == 0 ? 0 : 1;
}
