//===- tools/jrpm_lint.cpp - Static checks over workload modules -----------==//
//
// Usage:
//   jrpm-lint all [options]
//       Lint every registry workload.
//   jrpm-lint <workload> [options]
//       Lint one workload: the structural/def-use/type module verifier on
//       the lowered IR, the annotation verifier at both annotation levels,
//       and the TLS plan verifier for every candidate loop.
//
// Options:
//   --prefilter   enable the static dependence pre-filter
//   --deps        print the per-loop memory dependence report
//
// Exits nonzero if any verifier reports a violation.
//
//===----------------------------------------------------------------------===//

#include "analysis/Candidates.h"
#include "ir/AnnotationVerifier.h"
#include "ir/Verifier.h"
#include "jit/Annotator.h"
#include "jit/TlsPlan.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace jrpm;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jrpm-lint <workload>|all [--prefilter] [--deps]\n");
  return 2;
}

std::uint32_t reportErrors(const std::string &Workload, const char *Stage,
                           const std::vector<std::string> &Errors) {
  for (const std::string &E : Errors)
    std::printf("%s: %s: %s\n", Workload.c_str(), Stage, E.c_str());
  return static_cast<std::uint32_t>(Errors.size());
}

std::vector<ir::LoopAnnotationInfo>
annotationInfos(const analysis::ModuleAnalysis &MA) {
  std::vector<ir::LoopAnnotationInfo> Infos;
  Infos.reserve(MA.candidates().size());
  for (const analysis::CandidateStl &C : MA.candidates())
    Infos.push_back({C.AnnotatedLocals});
  return Infos;
}

void printDepReport(const workloads::Workload &W,
                    const analysis::ModuleAnalysis &MA) {
  std::printf("\n== %s: memory dependence report ==\n", W.Name.c_str());
  TextTable T;
  T.setHeader({"loop", "state", "loads", "stores", "RAW", "WAW", "may",
               "indep", "parallel", "serial window"});
  for (const analysis::CandidateStl &C : MA.candidates()) {
    const analysis::LoopMemDep &MD =
        MA.func(C.FuncIndex).MemDep->loopDep(C.LoopIdx);
    std::string Serial =
        MD.Serial.Found ? formatString("%u cyc", MD.Serial.WindowCycles) : "-";
    T.addRow({formatString("#%u", C.LoopId),
              C.Rejected ? analysis::rejectKindName(C.Kind) : "candidate",
              formatString("%u", MD.NumLoads),
              formatString("%u", MD.NumStores), formatString("%u", MD.NumRaw),
              formatString("%u", MD.NumWaw), formatString("%u", MD.NumMay),
              formatString("%u", MD.IndependentPairs),
              MD.ProvablyParallel ? "yes" : "-", Serial});
  }
  T.print();
}

std::uint32_t lintWorkload(const workloads::Workload &W,
                           const analysis::AnalysisOptions &Opts, bool Deps) {
  std::uint32_t Errors = 0;
  ir::Module M = W.Build();
  Errors += reportErrors(W.Name, "module verifier", ir::verifyModule(M));

  analysis::ModuleAnalysis MA(M, Opts);
  std::vector<ir::LoopAnnotationInfo> Infos = annotationInfos(MA);

  for (jit::AnnotationLevel Level :
       {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized}) {
    const char *Name = Level == jit::AnnotationLevel::Base
                           ? "annotation verifier (base)"
                           : "annotation verifier (optimized)";
    jit::AnnotatedModule AM = jit::annotateModule(M, MA, Level);
    Errors += reportErrors(W.Name, Name,
                           ir::verifyAnnotations(AM.Module, Infos));
    Errors += reportErrors(W.Name, "module verifier (annotated)",
                           ir::verifyModule(AM.Module));
  }

  for (const analysis::CandidateStl &C : MA.candidates()) {
    if (C.Rejected)
      continue;
    jit::TlsLoopPlan Plan = jit::buildTlsPlan(MA, C);
    Errors +=
        reportErrors(W.Name, "tls plan verifier", jit::verifyTlsPlan(M, Plan));
  }

  if (Deps)
    printDepReport(W, MA);
  return Errors;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Target = Argv[1];
  analysis::AnalysisOptions Opts;
  bool Deps = false;
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--prefilter")
      Opts.StaticPrefilter = true;
    else if (A == "--deps")
      Deps = true;
    else
      return usage();
  }

  std::uint32_t Errors = 0;
  std::uint32_t Linted = 0;
  if (Target == "all") {
    for (const workloads::Workload &W : workloads::allWorkloads()) {
      Errors += lintWorkload(W, Opts, Deps);
      ++Linted;
    }
  } else {
    const workloads::Workload *W = workloads::findWorkload(Target);
    if (!W) {
      std::fprintf(stderr, "unknown workload '%s' (try: jrpm-run list)\n",
                   Target.c_str());
      return 2;
    }
    Errors += lintWorkload(*W, Opts, Deps);
    ++Linted;
  }

  std::printf("%u workload(s) linted, %u violation(s)\n", Linted, Errors);
  return Errors == 0 ? 0 : 1;
}
